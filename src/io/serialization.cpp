#include "serialization.hpp"

#include <iomanip>
#include <istream>
#include <limits>
#include <memory>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "profiling/decision_tree.hpp"

namespace erms {

namespace {

constexpr const char *kModelHeader = "erms-models v1";
constexpr const char *kPlanHeader = "erms-plan v1";

/** Next non-comment, non-blank line; false at EOF. */
bool
nextLine(std::istream &is, std::string &line)
{
    while (std::getline(is, line)) {
        const auto first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#')
            continue;
        return true;
    }
    return false;
}

[[noreturn]] void
malformed(const std::string &context, const std::string &line)
{
    throw ErmsError("malformed " + context + " record: '" + line + "'");
}

} // namespace

PiecewiseLatencyModel
StoredModel::toModel() const
{
    auto tree = std::make_shared<DecisionTreeRegressor>();
    if (!cutoffTree.empty()) {
        std::vector<DecisionTreeRegressor::Node> nodes;
        nodes.reserve(cutoffTree.size());
        for (const TreeNode &stored : cutoffTree) {
            DecisionTreeRegressor::Node node;
            node.featureIndex = stored.featureIndex;
            node.threshold = stored.threshold;
            node.value = stored.value;
            node.left = stored.left;
            node.right = stored.right;
            nodes.push_back(node);
        }
        tree->restore(std::move(nodes));
    }
    const double fallback = cutoffFallback;
    return PiecewiseLatencyModel(
        below, above, [tree, fallback](const Interference &itf) {
            if (tree->trained()) {
                return std::max(
                    1.0, tree->predict({itf.cpuUtil, itf.memUtil}));
            }
            return fallback;
        });
}

double
StoredModel::cutoffAt(const Interference &itf) const
{
    return toModel().cutoff(itf);
}

StoredModel
storedFromFit(const PiecewiseFitResult &fit)
{
    StoredModel stored;
    stored.below = fit.below;
    stored.above = fit.above;
    stored.cutoffFallback = fit.cutoffFallback;
    if (fit.cutoffTree && fit.cutoffTree->trained()) {
        for (const auto &node : fit.cutoffTree->nodes()) {
            StoredModel::TreeNode out;
            out.featureIndex = node.featureIndex;
            out.threshold = node.threshold;
            out.value = node.value;
            out.left = node.left;
            out.right = node.right;
            stored.cutoffTree.push_back(out);
        }
    }
    return stored;
}

void
writeModel(std::ostream &os, MicroserviceId id, const StoredModel &model)
{
    // Full round-trip precision for all doubles.
    os << std::setprecision(std::numeric_limits<double>::max_digits10);
    os << "model " << id << '\n';
    const auto write_interval = [&](const char *tag,
                                    const IntervalParams &p) {
        os << tag << ' ' << p.alpha << ' ' << p.beta << ' ' << p.c << ' '
           << p.b << '\n';
    };
    write_interval("below", model.below);
    write_interval("above", model.above);
    os << "cutoff-fallback " << model.cutoffFallback << '\n';
    os << "cutoff-tree " << model.cutoffTree.size() << '\n';
    for (const StoredModel::TreeNode &node : model.cutoffTree) {
        os << "node " << node.featureIndex << ' ' << node.threshold << ' '
           << node.value << ' ' << node.left << ' ' << node.right << '\n';
    }
    os << "end\n";
}

void
writeModels(std::ostream &os,
            const std::unordered_map<MicroserviceId, StoredModel> &models)
{
    os << kModelHeader << '\n';
    os << "# fitted Eq.(15) models: two intervals (alpha beta c b) plus a"
          " cutoff decision tree\n";
    for (const auto &[id, model] : models)
        writeModel(os, id, model);
}

std::unordered_map<MicroserviceId, StoredModel>
readModels(std::istream &is)
{
    std::string line;
    if (!nextLine(is, line) || line != kModelHeader)
        throw ErmsError("model file: missing or unsupported header");

    std::unordered_map<MicroserviceId, StoredModel> models;
    while (nextLine(is, line)) {
        std::istringstream header(line);
        std::string tag;
        MicroserviceId id = kInvalidMicroservice;
        header >> tag >> id;
        if (tag != "model" || header.fail())
            malformed("model header", line);

        StoredModel model;
        const auto read_interval = [&](const char *expected,
                                       IntervalParams &p) {
            if (!nextLine(is, line))
                malformed("interval", "<eof>");
            std::istringstream in(line);
            std::string t;
            in >> t >> p.alpha >> p.beta >> p.c >> p.b;
            if (t != expected || in.fail())
                malformed("interval", line);
        };
        read_interval("below", model.below);
        read_interval("above", model.above);

        if (!nextLine(is, line))
            malformed("cutoff-fallback", "<eof>");
        {
            std::istringstream in(line);
            std::string t;
            in >> t >> model.cutoffFallback;
            if (t != "cutoff-fallback" || in.fail())
                malformed("cutoff-fallback", line);
        }

        if (!nextLine(is, line))
            malformed("cutoff-tree", "<eof>");
        std::size_t node_count = 0;
        {
            std::istringstream in(line);
            std::string t;
            in >> t >> node_count;
            if (t != "cutoff-tree" || in.fail())
                malformed("cutoff-tree", line);
        }
        for (std::size_t n = 0; n < node_count; ++n) {
            if (!nextLine(is, line))
                malformed("tree node", "<eof>");
            std::istringstream in(line);
            std::string t;
            StoredModel::TreeNode node;
            in >> t >> node.featureIndex >> node.threshold >> node.value >>
                node.left >> node.right;
            if (t != "node" || in.fail())
                malformed("tree node", line);
            model.cutoffTree.push_back(node);
        }
        if (!nextLine(is, line) || line != "end")
            malformed("model terminator", line);
        models.emplace(id, std::move(model));
    }
    return models;
}

void
attachModels(MicroserviceCatalog &catalog,
             const std::unordered_map<MicroserviceId, StoredModel> &models)
{
    for (const auto &[id, stored] : models)
        catalog.setModel(id, stored.toModel());
}

void
writePlan(std::ostream &os, const GlobalPlan &plan)
{
    os << kPlanHeader << '\n';
    os << "policy "
       << (plan.policy == SharingPolicy::Priority
               ? "priority"
               : plan.policy == SharingPolicy::FcfsSharing ? "fcfs"
                                                           : "non-sharing")
       << '\n';
    os << "feasible " << (plan.feasible ? 1 : 0) << '\n';
    for (const auto &[id, count] : plan.containers)
        os << "containers " << id << ' ' << count << '\n';
    for (const auto &[id, order] : plan.priorityOrder) {
        os << "priority " << id;
        for (ServiceId svc : order)
            os << ' ' << svc;
        os << '\n';
    }
    os << "end\n";
}

GlobalPlan
readPlan(std::istream &is)
{
    std::string line;
    if (!nextLine(is, line) || line != kPlanHeader)
        throw ErmsError("plan file: missing or unsupported header");

    GlobalPlan plan;
    bool terminated = false;
    while (nextLine(is, line)) {
        std::istringstream in(line);
        std::string tag;
        in >> tag;
        if (tag == "end") {
            terminated = true;
            break;
        } else if (tag == "policy") {
            std::string policy;
            in >> policy;
            if (policy == "priority")
                plan.policy = SharingPolicy::Priority;
            else if (policy == "fcfs")
                plan.policy = SharingPolicy::FcfsSharing;
            else if (policy == "non-sharing")
                plan.policy = SharingPolicy::NonSharing;
            else
                malformed("policy", line);
        } else if (tag == "feasible") {
            int flag = 0;
            in >> flag;
            if (in.fail())
                malformed("feasible", line);
            plan.feasible = flag != 0;
        } else if (tag == "containers") {
            MicroserviceId id = kInvalidMicroservice;
            int count = 0;
            in >> id >> count;
            if (in.fail() || count < 0)
                malformed("containers", line);
            plan.containers[id] = count;
            plan.totalContainers += count;
        } else if (tag == "priority") {
            MicroserviceId id = kInvalidMicroservice;
            in >> id;
            if (in.fail())
                malformed("priority", line);
            std::vector<ServiceId> order;
            ServiceId svc;
            while (in >> svc)
                order.push_back(svc);
            plan.priorityOrder[id] = std::move(order);
        } else {
            malformed("plan", line);
        }
    }
    if (!terminated)
        throw ErmsError("plan file: missing 'end' terminator");
    return plan;
}

} // namespace erms
