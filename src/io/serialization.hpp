/**
 * @file
 * Persistence for profiling results and scaling plans. The paper's
 * artifact stores days of offline-profiling output on disk and feeds it
 * to the online modules; this module provides the equivalent: fitted
 * piecewise models (including their decision-tree cutoffs) and global
 * plans round-trip through a line-oriented text format.
 *
 * Format: one record per line, whitespace-separated tokens, `#` comments
 * and blank lines ignored. Documented per record type below; versioned
 * with a header line so future changes stay detectable.
 */

#ifndef ERMS_IO_SERIALIZATION_HPP
#define ERMS_IO_SERIALIZATION_HPP

#include <iosfwd>
#include <string>

#include "model/catalog.hpp"
#include "profiling/piecewise_fit.hpp"
#include "scaling/plan.hpp"

namespace erms {

/**
 * Serializable form of a fitted piecewise model: the two interval
 * parameter sets plus the cutoff decision tree (or a constant fallback).
 * PiecewiseLatencyModel itself holds the cutoff as an opaque function,
 * so fits that should be persisted are converted through this view.
 */
struct StoredModel
{
    IntervalParams below{};
    IntervalParams above{};
    /** Flattened cutoff tree nodes; empty = constant cutoff. */
    struct TreeNode
    {
        int featureIndex = -1; ///< -1 for a leaf
        double threshold = 0.0;
        double value = 0.0;
        int left = -1;
        int right = -1;
    };
    std::vector<TreeNode> cutoffTree;
    double cutoffFallback = 1.0;

    /** Rebuild the runtime model (cutoff evaluated over (C, M)). */
    PiecewiseLatencyModel toModel() const;

    /** Evaluate the stored cutoff directly (for tests). */
    double cutoffAt(const Interference &itf) const;
};

/** Capture a fit into its storable form. */
StoredModel storedFromFit(const PiecewiseFitResult &fit);

/** Write one microservice's stored model. */
void writeModel(std::ostream &os, MicroserviceId id,
                const StoredModel &model);

/**
 * Write every fitted model in `fits` keyed by microservice id, with a
 * format header.
 */
void writeModels(
    std::ostream &os,
    const std::unordered_map<MicroserviceId, StoredModel> &models);

/**
 * Parse a model file previously produced by writeModels.
 * @throws ErmsError on malformed input or version mismatch.
 */
std::unordered_map<MicroserviceId, StoredModel>
readModels(std::istream &is);

/** Attach every stored model to the catalog. */
void attachModels(
    MicroserviceCatalog &catalog,
    const std::unordered_map<MicroserviceId, StoredModel> &models);

/** Write a global plan (policy, container counts, priority orders). */
void writePlan(std::ostream &os, const GlobalPlan &plan);

/**
 * Parse a plan previously produced by writePlan. Only deployment-facing
 * fields (policy, containers, priorityOrder, totals) round-trip;
 * per-service diagnostics are not persisted.
 */
GlobalPlan readPlan(std::istream &is);

} // namespace erms

#endif // ERMS_IO_SERIALIZATION_HPP
