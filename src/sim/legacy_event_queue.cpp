#include "legacy_event_queue.hpp"

#include "common/error.hpp"

namespace erms {

void
LegacyEventQueue::schedule(SimTime t, Callback cb)
{
    ERMS_ASSERT_MSG(t >= now_, "cannot schedule into the past");
    events_.push(Event{t, next_seq_++, std::move(cb)});
}

void
LegacyEventQueue::scheduleAfter(SimTime delay, Callback cb)
{
    schedule(now_ + delay, std::move(cb));
}

std::uint64_t
LegacyEventQueue::runUntil(SimTime horizon, const bool *stop)
{
    std::uint64_t dispatched = 0;
    while (!events_.empty() && events_.top().time <= horizon) {
        // priority_queue::top() is const; move via const_cast is safe
        // because we pop immediately after.
        Event event = std::move(const_cast<Event &>(events_.top()));
        events_.pop();
        now_ = event.time;
        event.cb();
        ++dispatched;
        if (stop != nullptr && *stop)
            return dispatched; // paused: leave now_ at the event time
    }
    if (now_ < horizon)
        now_ = horizon;
    return dispatched;
}

std::uint64_t
LegacyEventQueue::runCount(std::uint64_t max_events)
{
    std::uint64_t dispatched = 0;
    while (dispatched < max_events && !events_.empty()) {
        Event event = std::move(const_cast<Event &>(events_.top()));
        events_.pop();
        now_ = event.time;
        event.cb();
        ++dispatched;
    }
    return dispatched;
}

std::uint64_t
LegacyEventQueue::runAll()
{
    std::uint64_t dispatched = 0;
    while (!events_.empty()) {
        Event event = std::move(const_cast<Event &>(events_.top()));
        events_.pop();
        now_ = event.time;
        event.cb();
        ++dispatched;
    }
    return dispatched;
}

} // namespace erms
