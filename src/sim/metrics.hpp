/**
 * @file
 * Metrics collected by the cluster simulator: end-to-end latency per
 * service (total and per minute), per-microservice profiling records in
 * exactly the shape of the paper's samples d_i^j = (L_i^j, gamma_i^j,
 * C_i^j, M_i^j) (§5.2), and bookkeeping counters.
 */

#ifndef ERMS_SIM_METRICS_HPP
#define ERMS_SIM_METRICS_HPP

#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace erms {

/**
 * One per-minute profiling sample for one microservice: the paper's
 * d_i^j. Latency is the P95 of all per-request microservice latencies in
 * the minute; workload is the average calls handled per container.
 */
struct ProfilingRecord
{
    MicroserviceId microservice = kInvalidMicroservice;
    std::uint64_t minute = 0;
    double tailLatencyMs = 0.0;      ///< L_i^j (P95 within the minute)
    double meanLatencyMs = 0.0;      ///< mean within the minute
    double perContainerCalls = 0.0;  ///< gamma_i^j (requests/min/container)
    double cpuUtil = 0.0;            ///< C_i^j (avg over hosting hosts)
    double memUtil = 0.0;            ///< M_i^j
    std::size_t sampleCount = 0;     ///< requests observed in the minute
    int containers = 0;              ///< deployed containers that minute
};

/**
 * Fault-injection and resilience accounting (all zero on a fault-free
 * run with no resilience policies configured). "Attempt" counts cover
 * microservice call attempts: firstAttempts is one per call issued,
 * retries and hedges add to it.
 */
struct FaultStats
{
    std::uint64_t containerCrashes = 0;
    std::uint64_t containerRestarts = 0;
    std::uint64_t slowdownWindows = 0;

    std::uint64_t firstAttempts = 0;   ///< calls issued (one per call)
    std::uint64_t callRetries = 0;     ///< retry attempts launched
    std::uint64_t hedgesLaunched = 0;  ///< hedged duplicates launched
    std::uint64_t hedgeWins = 0;       ///< calls won by the hedge copy

    std::uint64_t callTimeouts = 0;        ///< attempts abandoned by timeout
    std::uint64_t transientFailures = 0;   ///< attempts lost to injected faults
    std::uint64_t crashFailures = 0;       ///< attempts lost to container crashes
    std::uint64_t callsFailed = 0;         ///< calls failed after budget exhausted

    /** Total attempts / first attempts: the load multiplier the
     *  resilience policy imposes on the cluster (1.0 = no overhead). */
    double retryAmplification() const;
};

/** All observable outputs of one simulation run. */
struct SimMetrics
{
    /** End-to-end request latency per service (ms), post-warmup. */
    std::unordered_map<ServiceId, SampleSet> endToEndMs;

    /** End-to-end latency bucketed by simulated minute. */
    std::unordered_map<ServiceId, WindowedSamples> endToEndByMinute;

    /** Per-minute profiling samples per microservice, in minute order. */
    std::vector<ProfilingRecord> profiling;

    /** Containers deployed per microservice at each minute boundary. */
    std::unordered_map<MicroserviceId, std::vector<std::pair<std::uint64_t, int>>>
        containerTimeline;

    std::uint64_t requestsGenerated = 0;
    std::uint64_t requestsCompleted = 0;
    std::uint64_t eventsDispatched = 0;

    /** Requests that finished with a permanently failed call (retry
     *  budget exhausted). Failed requests are excluded from the latency
     *  samples above but count as SLA violations in sloViolationRate(). */
    std::uint64_t requestsFailed = 0;

    /** Post-warmup failed-request counts per service. */
    std::unordered_map<ServiceId, std::uint64_t> failedByService;

    /** Fault-injection / resilience counters. */
    FaultStats faults;

    /** P95 end-to-end latency of a service; 0 when unobserved. */
    double p95(ServiceId service) const;

    /** Fraction of a service's requests exceeding the SLA threshold. */
    double violationRate(ServiceId service, double sla_ms) const;

    /**
     * SLA-violation rate including failures: (late successes + failed
     * requests) / (all post-warmup finished requests). Equal to
     * violationRate() on a fault-free run.
     */
    double sloViolationRate(ServiceId service, double sla_ms) const;

    /** Profiling records of one microservice, minute-ordered. */
    std::vector<ProfilingRecord>
    profilingFor(MicroserviceId microservice) const;
};

} // namespace erms

#endif // ERMS_SIM_METRICS_HPP
