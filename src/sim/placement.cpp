#include "placement.hpp"

#include "common/error.hpp"

namespace erms {

std::size_t
SpreadPlacementPolicy::placeContainer(const std::vector<HostView> &hosts,
                                      double, double)
{
    ERMS_ASSERT(!hosts.empty());
    std::size_t best = 0;
    double best_alloc = hosts[0].cpuAllocatedCores / hosts[0].cpuCapacityCores;
    for (std::size_t i = 1; i < hosts.size(); ++i) {
        const double alloc =
            hosts[i].cpuAllocatedCores / hosts[i].cpuCapacityCores;
        if (alloc < best_alloc) {
            best_alloc = alloc;
            best = i;
        }
    }
    return best;
}

std::size_t
SpreadPlacementPolicy::evictContainer(const std::vector<HostView> &hosts,
                                      const std::vector<std::size_t> &candidates,
                                      double, double)
{
    ERMS_ASSERT(!candidates.empty());
    std::size_t best = 0;
    double best_alloc = -1.0;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        const HostView &host = hosts[candidates[i]];
        const double alloc = host.cpuAllocatedCores / host.cpuCapacityCores;
        if (alloc > best_alloc) {
            best_alloc = alloc;
            best = i;
        }
    }
    return best;
}

} // namespace erms
