/**
 * @file
 * Discrete-event microservice cluster simulator — the substrate standing
 * in for the paper's 20-host Kubernetes testbed (see DESIGN.md).
 *
 * The simulator models:
 *  - physical hosts with CPU/memory capacity and background (batch /
 *    iBench-like) load;
 *  - containers with fixed-size thread pools; per-request service times
 *    are log-normal with a mean inflated by the hosting host's CPU and
 *    memory utilization (the interference coupling of Fig. 3);
 *  - request execution along dependency graphs: a request queues at a
 *    container, is processed by one thread, then fans out its downstream
 *    stages (parallel within a stage, sequential across stages) and
 *    responds when the last stage finishes;
 *  - request scheduling at containers: FCFS, or the paper's
 *    delta-probabilistic priority rule at shared microservices (§5.3.2);
 *  - online scaling: container counts can change mid-run through a
 *    PlacementPolicy, and a per-minute controller hook drives closed-loop
 *    experiments (Fig. 13);
 *  - tracing: client/server spans per call, emitted to a SpanCollector;
 *  - fault injection and resilience (src/fault): seed-driven container
 *    crash/restart schedules, host slowdown windows feeding the
 *    interference model, transient per-call failures; the dispatch path
 *    optionally retries with exponential backoff + jitter, applies
 *    per-attempt timeouts, and hedges slow calls. All disabled by
 *    default — a run without faults/resilience is byte-identical to the
 *    pre-fault-layer simulator (no extra RNG draws, no extra events).
 */

#ifndef ERMS_SIM_SIMULATION_HPP
#define ERMS_SIM_SIMULATION_HPP

#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "graph/dependency_graph.hpp"
#include "model/catalog.hpp"
#include "scaling/plan.hpp"
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"
#include "sim/placement.hpp"
#include "trace/span.hpp"

namespace erms {

namespace telemetry {
class SimMonitor;
}

class LegacyEventQueue;

/**
 * Which event engine executes a run. Both dispatch the identical
 * (time, insertion-seq) order, so a run is byte-identical under either;
 * Calendar is the allocation-free fast path, LegacyHeap the pre-refactor
 * binary heap kept for differential tests and the perf trajectory.
 * Selectable per run via setEventEngine() or the ERMS_EVENT_ENGINE
 * environment variable ("legacy" / "calendar").
 */
enum class EventEngine
{
    Calendar,
    LegacyHeap,
};

/** How arriving calls pick a container among a deployment's replicas. */
enum class DispatchPolicy
{
    /** Pick the replica with the fewest outstanding jobs (an
     *  informed/utilization-aware load balancer). */
    LeastLoaded,
    /** Rotate blindly across replicas — the behaviour of a default
     *  Kubernetes Service, which ignores host interference. */
    RoundRobin,
};

/** Static configuration of one simulation run. */
struct SimConfig
{
    int hostCount = 20;
    double hostCpuCores = 32.0;
    double hostMemMb = 64.0 * 1024.0;
    /** delta of the probabilistic priority rule; 0 = strict priority. */
    double schedulingDelta = 0.05;
    DispatchPolicy dispatch = DispatchPolicy::LeastLoaded;
    /** Startup delay before a newly placed container accepts work
     *  (§6.5.2: "a container usually requires several seconds to
     *  start"). 0 keeps containers instantly available. */
    double containerStartupMs = 0.0;
    /** Run length in simulated minutes. */
    int horizonMinutes = 10;
    /** Minutes excluded from metrics at the start. */
    int warmupMinutes = 1;
    std::uint64_t seed = 1;
};

/** One online service attached to the simulator. */
struct ServiceWorkload
{
    ServiceId id = kInvalidService;
    const DependencyGraph *graph = nullptr;
    double slaMs = 0.0;
    /** Constant arrival rate (requests/minute) ... */
    RequestsPerMinute rate = 0.0;
    /** ... or a per-minute rate series overriding it when non-empty
     *  (minute m uses rateSeries[min(m, size-1)]). */
    std::vector<double> rateSeries;
};

/**
 * Read-only snapshot of one deployed container (debug/test
 * observability — the per-replica state the dispatch and drain paths
 * act on).
 */
struct ContainerView
{
    ContainerId id = 0;
    HostId host = kInvalidHost;
    ServiceId dedicatedService = kInvalidService;
    int threads = 0;
    int busy = 0;
    std::size_t queued = 0;
    bool draining = false;
    /** Killed by fault injection (implies draining). */
    bool crashed = false;
    /** Simulated time the container starts accepting work. */
    SimTime readyAt = 0;
};

/**
 * Read-only cross-thread snapshot of hot-loop cluster state, published
 * by the simulation thread at minute boundaries and telemetry scrapes
 * through a double buffer. Observers (dashboards, controllers polling
 * from other threads, the SimMonitor scrape path) read this instead of
 * the live dispatch structures, so a scrape can never race the event
 * loop.
 */
struct ClusterSnapshot
{
    struct HostSample
    {
        HostId id = kInvalidHost;
        double cpuUtil = 0.0;
        double memUtil = 0.0;
    };
    struct DeploymentSample
    {
        MicroserviceId ms = kInvalidMicroservice;
        int live = 0;
        int busy = 0;
        std::uint64_t queued = 0;
    };

    SimTime at = 0;
    /** Monotonic publish counter (0 = never published). */
    std::uint64_t sequence = 0;
    std::vector<HostSample> hosts;
    /** Every microservice ever deployed, id ascending. */
    std::vector<DeploymentSample> deployments;
};

/** The cluster simulator. */
class Simulation
{
  public:
    Simulation(const MicroserviceCatalog &catalog, SimConfig config);
    ~Simulation();

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    // --- deployment control -------------------------------------------

    /** Set background (iBench-like) load on one host. */
    void setBackgroundLoad(HostId host, double cpu_util, double mem_util);

    /** Set background load on every host. */
    void setBackgroundLoadAll(double cpu_util, double mem_util);

    /** Replace the placement policy (default: SpreadPlacementPolicy). */
    void setPlacementPolicy(std::shared_ptr<PlacementPolicy> policy);

    /** Scale a microservice's *shared* pool to the given container
     *  count (>= 0). Dedicated partitions are managed separately. */
    void setContainerCount(MicroserviceId ms, int count);

    /**
     * Scale the partition of a microservice dedicated to one service
     * (the §2.3 non-sharing scheme): dedicated containers only accept
     * that service's requests, and its requests prefer them.
     */
    void setDedicatedContainerCount(MicroserviceId ms, ServiceId service,
                                    int count);

    /** Live containers of a microservice (shared + all partitions). */
    int containerCount(MicroserviceId ms) const;

    /** Apply container counts and priority order from a global plan. */
    void applyPlan(const GlobalPlan &plan);

    /** Configure the priority order (highest first) at one microservice;
     *  services absent from the order get the lowest priority. */
    void setPriorityOrder(MicroserviceId ms,
                          const std::vector<ServiceId> &order);

    /** Drop all priority configuration (pure FCFS everywhere). */
    void clearPriorities();

    void setSchedulingDelta(double delta);

    /** Select the event engine (before run()). Defaults to Calendar, or
     *  to the ERMS_EVENT_ENGINE environment variable when set. */
    void setEventEngine(EventEngine engine);

    EventEngine eventEngine() const { return engine_; }

    // --- fault injection and resilience --------------------------------

    /**
     * Configure fault injection for this run (must be called before
     * run()). The schedule is derived from config.seed alone — the same
     * seed yields the same crash times and slowdown windows under any
     * workload, resilience policy, or runner worker count.
     */
    void setFaultConfig(const FaultConfig &config);

    /** Configure the dispatch path's resilience policy (before run()). */
    void setResilienceConfig(const ResilienceConfig &config);

    const FaultConfig &faultConfig() const { return faultConfig_; }
    const ResilienceConfig &resilienceConfig() const { return resilience_; }

    // --- services and tracing ------------------------------------------

    void addService(ServiceWorkload service);

    /** Attach a span collector (not owned; may be null). */
    void setSpanCollector(SpanCollector *collector);

    /**
     * Attach an online telemetry monitor (not owned; may be null; must
     * be set before run()). The simulator then feeds the monitor's
     * metric series as events happen and takes a scrape snapshot every
     * monitor-configured interval, driven by the event queue.
     * Telemetry is purely observational: it draws no randomness and
     * never reorders request events, so a run with a monitor attached
     * completes exactly the same requests at exactly the same times as
     * a run without one (pinned by the TelemetryTransparency tests).
     */
    void setMonitor(telemetry::SimMonitor *monitor);

    /**
     * Controller hook invoked at every simulated minute boundary, after
     * metrics for the elapsed minute were flushed. Drives closed-loop
     * autoscaling experiments.
     */
    void setMinuteCallback(std::function<void(Simulation &, int)> callback);

    // --- execution ------------------------------------------------------

    /** Run the configured horizon. May be called once per Simulation. */
    void run();

    // --- coordinated stepping (sharded execution, src/shard) ------------

    /**
     * Enable minute-pause mode (before beginRun()): instead of invoking
     * the minute callback inline, the drain loop returns control to the
     * caller at every minute boundary — after that minute's metrics
     * flush and snapshot publish, but *before* the callback slot and the
     * next boundary post. A shard coordinator uses the pause to merge
     * cross-shard telemetry and run controllers at exactly the point in
     * the event sequence where an inline callback would have run, so a
     * single-shard coordinated run is byte-identical to run().
     */
    void setCoordinatedPause(bool on);

    /**
     * Setup phase of run(): installs the fault schedule, seeds arrivals,
     * posts the first minute boundary and scrape, publishes the initial
     * snapshot. Counts as the one permitted run() call.
     */
    void beginRun();

    /**
     * Advance the simulation to the next minute pause or to the horizon.
     * If the simulation is currently paused, the paused minute is first
     * finished (minute callback if installed, then the next boundary
     * post) — any mutation the caller performed while paused lands at
     * the exact event-sequence position of an inline minute callback.
     * @return the ended minute index of the new pause, or -1 once the
     *         horizon has been drained.
     */
    int advanceToMinuteBoundary();

    /** Minute index the simulation is paused at; -1 when not paused. */
    int pausedMinute() const { return pausedMinute_; }

    // --- observation -----------------------------------------------------

    const SimMetrics &metrics() const { return metrics_; }
    SimTime now() const;

    /** Read-only load views for placement policies / provisioning. */
    std::vector<HostView> hostViews() const;

    /** Instantaneous interference on one host. */
    Interference hostInterference(HostId host) const;

    /** Cluster-average interference (what Online Scaling feeds into the
     *  profiling model, §5.3.1). */
    Interference clusterInterference() const;

    /** Requests observed for a service in the most recent full minute,
     *  scaled to requests/minute (workload signal for controllers). */
    double observedRate(ServiceId service) const;

    /** Snapshots of every container object of a microservice, deployment
     *  order, including draining ones (empty when undeployed). */
    std::vector<ContainerView> containerViews(MicroserviceId ms) const;

    /** Current round-robin dispatch cursor of a microservice (always
     *  < the deployment's container-object count once any RoundRobin
     *  dispatch happened; 0 when untouched). Test/debug observability. */
    std::size_t roundRobinCursor(MicroserviceId ms) const;

    /**
     * Copy of the most recently published cluster snapshot. Thread-safe:
     * may be called from any thread while run() executes — readers copy
     * the front buffer under a mutex while the simulation thread fills
     * the back buffer and swaps at publish points (minute boundaries and
     * telemetry scrapes). sequence == 0 until the first publish.
     */
    ClusterSnapshot clusterSnapshot() const;

  private:
    struct HostState;
    struct ContainerState;
    struct Deployment;
    struct RequestState;
    struct CallContext;
    struct QueuedJob;

    /** Why one call attempt failed (metrics + retry routing). */
    enum class FailureKind
    {
        Timeout,
        Transient,
        Crash,
    };

    // event engine internals
    /** Dispatch one typed event record (the engine-hot switch). */
    void dispatchEvent(const EventRecord &event);
    /** Schedule a typed record on whichever engine runs this sim. */
    void post(SimTime t, const EventRecord &event);
    void postAfter(SimTime delay, const EventRecord &event);

    // deployment internals
    ContainerState *addContainer(MicroserviceId ms,
                                 ServiceId dedicated = kInvalidService);
    void removeContainer(MicroserviceId ms,
                         ServiceId dedicated = kInvalidService);
    int countPool(MicroserviceId ms, ServiceId dedicated) const;
    ContainerState *pickContainer(MicroserviceId ms, ServiceId service);
    void reassignQueue(ContainerState &container);
    void redistributeBacklog(MicroserviceId ms);
    Deployment &deploymentFor(MicroserviceId ms);
    static std::vector<ContainerState *>
    insertionOrdered(const Deployment &dep);
    ContainerState *acquireContainer();
    /** Swap-and-pop the container out of its deployment's slot vector
     *  (O(1) via the stored slot index) and recycle the object. */
    void eraseContainerSlot(ContainerState &victim);
    /** Re-pack the container's (load, id) pick key after any busy or
     *  queued-count change (see Deployment::loadKeys). */
    void refreshLoadKey(ContainerState &container);
    /** Start draining: flips the flag and keeps the deployment's
     *  special-slot count consistent for the dispatch fast path. */
    void markDraining(ContainerState &container);
    /** Recompute the host's cached memory utilization; called at every
     *  memAllocated / bgMem / memCapacity mutation site. */
    static void refreshMemUtil(HostState &host);
    void rebuildRankTable();

    // request execution internals
    void scheduleArrival(std::size_t service_index);
    void startRequest(std::size_t service_index);
    void issueCall(CallContext *ctx);
    void launchAttempt(CallContext *ctx, int slot);
    void routeAttempt(CallContext *ctx, std::uint64_t attempt,
                      bool count_call);
    void onContainerReady(MicroserviceId ms, ContainerId id);
    void onChildDone(CallContext *parent);
    void enqueueAttempt(ContainerState &container, CallContext *ctx,
                        std::uint64_t attempt);
    void startJob(ContainerState &container, CallContext *ctx,
                  std::uint64_t attempt);
    void finishJob(CallContext *ctx, std::uint64_t attempt,
                   ContainerState *container);
    void deliverCall(CallContext *ctx, int slot);
    void launchStage(CallContext *ctx);
    void completeContext(CallContext *ctx);
    void propagateCompletion(CallContext *parent, RequestState *req,
                             SimTime network);
    void finishRequest(RequestState *req);
    QueuedJob popQueuedJob(ContainerState &container);
    int priorityRank(MicroserviceId ms, ServiceId service) const;

    // fault / resilience internals
    int slotOf(const CallContext *ctx, std::uint64_t attempt) const;
    void dequeueAttempt(CallContext *ctx, int slot);
    void cancelAttempt(CallContext *ctx, int slot);
    void onAttemptTimeout(CallContext *ctx, std::uint64_t attempt);
    void maybeHedge(CallContext *ctx, std::uint64_t attempt);
    void failAttempt(CallContext *ctx, std::uint64_t attempt,
                     FailureKind kind);
    void failCall(CallContext *ctx);
    void onCrashEvent(std::uint64_t victim_draw);
    void crashContainer(ContainerState &victim);
    void installFaultSchedule(SimTime horizon);

    // telemetry internals
    void scheduleScrape(SimTime at, SimTime horizon);
    void scrapeTelemetry();
    /** Fill the back snapshot buffer from live state and swap it to the
     *  front (the only writer; runs on the simulation thread). */
    void publishSnapshot();

    // time bookkeeping
    void onMinuteBoundary();
    /** Post the boundary event for the next minute (if any remain). */
    void postNextMinuteBoundary();
    /** Drain the calendar engine until pause or horizon (see run()). */
    void drainCalendar();
    void noteBusyChange(HostState &host, double delta_cores);
    double hostCpuUtil(const HostState &host) const;
    double hostMemUtil(const HostState &host) const;
    double serviceRate(std::size_t service_index) const;

    const MicroserviceCatalog &catalog_;
    SimConfig config_;
    EventQueue events_;
    /** Present only when engine_ == LegacyHeap. */
    std::unique_ptr<LegacyEventQueue> legacy_;
    EventEngine engine_ = EventEngine::Calendar;
    Rng rng_;
    FaultConfig faultConfig_;
    ResilienceConfig resilience_;
    bool faultsEnabled_ = false;
    Rng callFaultRng_;   ///< transient-failure draws (own stream)
    Rng resilienceRng_;  ///< retry-jitter draws (own stream)
    std::uint64_t nextAttempt_ = 1;
    std::shared_ptr<PlacementPolicy> placement_;
    SpanCollector *spans_ = nullptr;
    telemetry::SimMonitor *monitor_ = nullptr;
    std::function<void(Simulation &, int)> minuteCallback_;

    /** Dense host table, indexed by HostId. */
    std::vector<HostState> hosts_;
    /**
     * Dense deployment table, indexed by MicroserviceId (catalog ids are
     * sequential). Each deployment holds stable ContainerState pointers
     * in swap-and-pop slot order; the objects live in containerArena_
     * and are recycled through containerFree_, so in-flight events that
     * captured a container pointer always dereference a live object.
     */
    std::vector<Deployment> deployments_;
    std::vector<std::unique_ptr<ContainerState>> containerArena_;
    std::vector<ContainerState *> containerFree_;
    std::vector<ServiceWorkload> services_;
    std::unordered_map<ServiceId, std::size_t> serviceIndex_;
    std::unordered_map<MicroserviceId,
                       std::unordered_map<ServiceId, int>>
        priorityRanks_;
    /**
     * Dense priority-rank table rebuilt from priorityRanks_ whenever the
     * order or service set changes: rankTable_[ms][serviceIndex] is the
     * queue class the hot enqueue path reads without hashing. Empty rows
     * mean rank 0 (no order configured at that microservice).
     */
    std::vector<std::vector<int>> rankTable_;
    bool anyPriorities_ = false;

    SimMetrics metrics_;
    /** Lazy per-service pointers into metrics_ maps (node-based, so the
     *  pointers are stable); resolved on first touch to preserve the
     *  maps' lazy entry-creation semantics. Indexed by service index. */
    struct ServiceMetricCache
    {
        SampleSet *endToEnd = nullptr;
        WindowedSamples *byMinute = nullptr;
        std::uint64_t *failed = nullptr;
    };
    std::vector<ServiceMetricCache> metricCache_;

    // per-minute scratch accumulators
    struct MinuteScratch;
    std::unique_ptr<MinuteScratch> scratch_;
    /** Dense per-service arrival counters (index = service index). */
    std::vector<std::uint64_t> arrivalsByIndex_;
    std::vector<std::uint64_t> lastMinuteArrivalsByIndex_;

    // double-buffered observer snapshot (see clusterSnapshot())
    ClusterSnapshot snapBuffers_[2];
    int snapFront_ = 0;
    mutable std::mutex snapMutex_;

    RequestId nextRequest_ = 1;
    ContainerId nextContainer_ = 1;
    int currentMinute_ = 0;
    bool ran_ = false;

    // coordinated stepping state (see setCoordinatedPause())
    bool coordinatedPause_ = false;
    /** Set by onMinuteBoundary() in coordinated mode; the drain loops
     *  check it after each dispatched event and unwind. */
    bool pauseRequested_ = false;
    int pausedMinute_ = -1;
    SimTime runHorizon_ = 0;
};

} // namespace erms

#endif // ERMS_SIM_SIMULATION_HPP
