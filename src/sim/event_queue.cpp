#include "event_queue.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/error.hpp"

namespace erms {

namespace {

constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

EventQueue::EventQueue(std::size_t bucket_count, SimTime bucket_width)
    : bucketCount_(bucket_count), bucketWidth_(bucket_width),
      span_(static_cast<SimTime>(bucket_count) * bucket_width)
{
    ERMS_ASSERT_MSG(isPowerOfTwo(bucket_count),
                    "bucket count must be a power of two");
    ERMS_ASSERT_MSG(isPowerOfTwo(bucket_width),
                    "bucket width must be a power of two");
    buckets_.resize(bucketCount_);
}

void
EventQueue::schedule(SimTime t, Callback cb)
{
    std::uint32_t slot;
    if (!freeSlots_.empty()) {
        slot = freeSlots_.back();
        freeSlots_.pop_back();
        slots_[slot] = std::move(cb);
    } else {
        slot = static_cast<std::uint32_t>(slots_.size());
        slots_.push_back(std::move(cb));
    }
    EventRecord rec;
    rec.type = kCallbackEvent;
    rec.a = slot;
    post(t, rec);
}

void
EventQueue::scheduleAfter(SimTime delay, Callback cb)
{
    schedule(now_ + delay, std::move(cb));
}

void
EventQueue::pourFar()
{
    std::size_t keep = 0;
    SimTime keep_min = 0;
    for (std::size_t i = 0; i < far_.size(); ++i) {
        const EventRecord &rec = far_[i];
        if (rec.time - windowStart_ < span_) {
            // windowStart_ never overtakes a far event, so the
            // subtraction cannot underflow.
            const std::size_t index = static_cast<std::size_t>(
                (rec.time - windowStart_) / bucketWidth_);
            buckets_[index].push_back(rec);
            ++wheelCount_;
            continue;
        }
        if (keep == 0 || rec.time < keep_min)
            keep_min = rec.time;
        far_[keep++] = rec;
    }
    far_.resize(keep);
    farMin_ = keep_min;
}

void
EventQueue::runCallback(const EventRecord &rec)
{
    ERMS_ASSERT(rec.type == kCallbackEvent);
    const std::uint32_t slot = static_cast<std::uint32_t>(rec.a);
    ERMS_ASSERT(slot < slots_.size());
    // Move the callable out and free the slot *before* invoking: the
    // callback may schedule new callbacks, reuse this very slot, or
    // even grow the pool — none of which may touch the running
    // callable.
    Callback cb = std::move(slots_[slot]);
    slots_[slot] = nullptr;
    freeSlots_.push_back(slot);
    cb();
}

std::uint64_t
EventQueue::runUntil(SimTime horizon)
{
    std::uint64_t dispatched = 0;
    EventRecord rec;
    while (next(horizon, rec)) {
        ERMS_ASSERT_MSG(rec.type == kCallbackEvent,
                        "typed event dispatched through runUntil; the "
                        "owner must drive next() itself");
        runCallback(rec);
        ++dispatched;
    }
    return dispatched;
}

std::uint64_t
EventQueue::runAll()
{
    std::uint64_t dispatched = 0;
    SimTime t;
    while (peekTime(t)) {
        const EventRecord rec = popTop();
        now_ = t;
        ERMS_ASSERT_MSG(rec.type == kCallbackEvent,
                        "typed event dispatched through runAll; the "
                        "owner must drive next() itself");
        runCallback(rec);
        ++dispatched;
    }
    return dispatched;
}

} // namespace erms
