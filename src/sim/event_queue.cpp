#include "event_queue.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/error.hpp"

namespace erms {

namespace {

constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

EventQueue::EventQueue(std::size_t bucket_count, SimTime bucket_width)
    : bucketCount_(bucket_count), bucketWidth_(bucket_width),
      span_(static_cast<SimTime>(bucket_count) * bucket_width)
{
    ERMS_ASSERT_MSG(isPowerOfTwo(bucket_count),
                    "bucket count must be a power of two");
    ERMS_ASSERT_MSG(isPowerOfTwo(bucket_width),
                    "bucket width must be a power of two");
    buckets_.resize(bucketCount_);
}

void
EventQueue::post(SimTime t, EventRecord rec)
{
    ERMS_ASSERT_MSG(t >= now_, "cannot schedule into the past");
    rec.time = t;
    rec.seq = next_seq_++;
    ++pending_;

    if (t < windowStart_) {
        // The wheel advanced past t while hunting for a later event
        // (e.g. the sim idled to a horizon, then scheduled from there).
        // Rare by construction: park in the early heap, which always
        // dispatches before the wheel (early times < windowStart_ <=
        // every wheel/far time).
        early_.push_back(rec);
        std::push_heap(early_.begin(), early_.end(), Later{});
        return;
    }
    if (t - windowStart_ >= span_) {
        if (far_.empty() || t < farMin_)
            farMin_ = t;
        far_.push_back(rec);
        return;
    }
    const std::size_t index =
        static_cast<std::size_t>((t - windowStart_) / bucketWidth_);
    if (index < cursor_) {
        // Buckets before the cursor are empty (the cursor only advances
        // past drained buckets), so reopening is just a rewind.
        cursor_ = index;
        activeHeapified_ = false;
    }
    std::vector<EventRecord> &bucket = buckets_[index];
    bucket.push_back(rec);
    if (index == cursor_ && activeHeapified_)
        std::push_heap(bucket.begin(), bucket.end(), Later{});
    ++wheelCount_;
}

void
EventQueue::postAfter(SimTime delay, EventRecord rec)
{
    post(now_ + delay, rec);
}

void
EventQueue::schedule(SimTime t, Callback cb)
{
    std::uint32_t slot;
    if (!freeSlots_.empty()) {
        slot = freeSlots_.back();
        freeSlots_.pop_back();
        slots_[slot] = std::move(cb);
    } else {
        slot = static_cast<std::uint32_t>(slots_.size());
        slots_.push_back(std::move(cb));
    }
    EventRecord rec;
    rec.type = kCallbackEvent;
    rec.a = slot;
    post(t, rec);
}

void
EventQueue::scheduleAfter(SimTime delay, Callback cb)
{
    schedule(now_ + delay, std::move(cb));
}

void
EventQueue::pourFar()
{
    std::size_t keep = 0;
    SimTime keep_min = 0;
    for (std::size_t i = 0; i < far_.size(); ++i) {
        const EventRecord &rec = far_[i];
        if (rec.time - windowStart_ < span_) {
            // windowStart_ never overtakes a far event, so the
            // subtraction cannot underflow.
            const std::size_t index = static_cast<std::size_t>(
                (rec.time - windowStart_) / bucketWidth_);
            buckets_[index].push_back(rec);
            ++wheelCount_;
            continue;
        }
        if (keep == 0 || rec.time < keep_min)
            keep_min = rec.time;
        far_[keep++] = rec;
    }
    far_.resize(keep);
    farMin_ = keep_min;
}

bool
EventQueue::peekTime(SimTime &t)
{
    if (!early_.empty()) {
        t = early_.front().time;
        return true;
    }
    if (pending_ == 0)
        return false;
    for (;;) {
        if (wheelCount_ == 0) {
            // Everything pending lives in the far list: jump the window
            // straight to it instead of walking empty rotations.
            windowStart_ = farMin_ - farMin_ % span_;
            cursor_ = 0;
            activeHeapified_ = false;
            pourFar(); // farMin_ lands inside the new window
            continue;
        }
        if (buckets_[cursor_].empty()) {
            ++cursor_;
            activeHeapified_ = false;
            if (cursor_ == bucketCount_) {
                windowStart_ += span_;
                cursor_ = 0;
                if (!far_.empty())
                    pourFar();
            }
            continue;
        }
        std::vector<EventRecord> &bucket = buckets_[cursor_];
        if (!activeHeapified_) {
            std::make_heap(bucket.begin(), bucket.end(), Later{});
            activeHeapified_ = true;
        }
        t = bucket.front().time;
        return true;
    }
}

EventRecord
EventQueue::popTop()
{
    --pending_;
    if (!early_.empty()) {
        std::pop_heap(early_.begin(), early_.end(), Later{});
        const EventRecord rec = early_.back();
        early_.pop_back();
        return rec;
    }
    std::vector<EventRecord> &bucket = buckets_[cursor_];
    std::pop_heap(bucket.begin(), bucket.end(), Later{});
    const EventRecord rec = bucket.back();
    bucket.pop_back();
    --wheelCount_;
    return rec;
}

bool
EventQueue::next(SimTime horizon, EventRecord &out)
{
    SimTime t;
    if (!peekTime(t) || t > horizon) {
        if (now_ < horizon)
            now_ = horizon;
        return false;
    }
    out = popTop();
    now_ = t;
    return true;
}

void
EventQueue::runCallback(const EventRecord &rec)
{
    ERMS_ASSERT(rec.type == kCallbackEvent);
    const std::uint32_t slot = static_cast<std::uint32_t>(rec.a);
    ERMS_ASSERT(slot < slots_.size());
    // Move the callable out and free the slot *before* invoking: the
    // callback may schedule new callbacks, reuse this very slot, or
    // even grow the pool — none of which may touch the running
    // callable.
    Callback cb = std::move(slots_[slot]);
    slots_[slot] = nullptr;
    freeSlots_.push_back(slot);
    cb();
}

std::uint64_t
EventQueue::runUntil(SimTime horizon)
{
    std::uint64_t dispatched = 0;
    EventRecord rec;
    while (next(horizon, rec)) {
        ERMS_ASSERT_MSG(rec.type == kCallbackEvent,
                        "typed event dispatched through runUntil; the "
                        "owner must drive next() itself");
        runCallback(rec);
        ++dispatched;
    }
    return dispatched;
}

std::uint64_t
EventQueue::runAll()
{
    std::uint64_t dispatched = 0;
    SimTime t;
    while (peekTime(t)) {
        const EventRecord rec = popTop();
        now_ = t;
        ERMS_ASSERT_MSG(rec.type == kCallbackEvent,
                        "typed event dispatched through runAll; the "
                        "owner must drive next() itself");
        runCallback(rec);
        ++dispatched;
    }
    return dispatched;
}

} // namespace erms
