#include "simulation.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"
#include "sim/legacy_event_queue.hpp"
#include "telemetry/monitor.hpp"

namespace erms {

namespace {

constexpr SimTime kMinute = 60ULL * 1000ULL * 1000ULL; // 60 s in usec

/**
 * Typed event vocabulary of the simulator, dispatched through
 * Simulation::dispatchEvent. Payload conventions are noted per type;
 * kCallbackEvent (0) stays reserved for the queue's own callback slots.
 */
enum SimEvent : std::uint32_t
{
    kEvArrival = 1,      ///< a = service index; start request, reschedule
    kEvArrivalRecheck,   ///< a = service index; zero-rate minute recheck
    kEvAttemptNetwork,   ///< p1 = ctx, a = attempt id; deliver to replica
    kEvAttemptTimeout,   ///< p1 = ctx, a = attempt id
    kEvHedgeTimer,       ///< p1 = ctx, a = attempt id
    kEvContainerReady,   ///< a = microservice id, b = container id
    kEvJobFinish,        ///< p1 = ctx, p2 = container, a = attempt id
    kEvRetryLaunch,      ///< p1 = ctx; fire the armed retry
    kEvChildDone,        ///< p1 = parent ctx; a child's response arrived
    kEvRequestDone,      ///< p1 = request; response reached the client
    kEvMinuteBoundary,   ///< flush minute metrics, run the controller
    kEvCrash,            ///< a = victim draw
    kEvSlowdownStart,    ///< a = host
    kEvSlowdownEnd,      ///< a = host
    kEvContainerRestart, ///< a = microservice id, b = dedicated service
    kEvScrape,           ///< a = horizon; telemetry snapshot + reschedule
};

} // namespace

// ---------------------------------------------------------------------
// Internal state types
// ---------------------------------------------------------------------

struct Simulation::HostState
{
    HostId id = kInvalidHost;
    double cpuCapacity = 32.0;
    double memCapacity = 64.0 * 1024.0;
    double bgCpu = 0.0;
    double bgMem = 0.0;
    double cpuAllocated = 0.0; ///< sum of container CPU requests
    double memAllocated = 0.0; ///< sum of container memory requests
    double busyCores = 0.0;    ///< cores actively used by busy threads
    /** Cached clamp(bgMem + memAllocated / memCapacity): memory
     *  utilization only changes when containers are placed/removed or
     *  background load is reset, so the division is paid per scale
     *  event instead of per job start. Maintained by refreshMemUtil(). */
    double memUtilCached = 0.0;
    double busyIntegral = 0.0; ///< core-usec within the current minute
    SimTime lastUpdate = 0;
    int containerCount = 0;
    int activeSlowdowns = 0;   ///< straggler windows currently open
};

struct Simulation::CallContext
{
    /**
     * One in-flight attempt of this call. Events (dispatch, timeout,
     * completion, hedge) capture the attempt id and are ignored when it
     * no longer matches a live slot — the generation guard that makes
     * abandonment (timeout), hedging, and crash loss safe against stale
     * scheduled callbacks.
     */
    struct AttemptSlot
    {
        std::uint64_t id = 0; ///< 0 = slot inactive
        ContainerState *container = nullptr;
        bool queued = false;
        SimTime receiveTime = 0;
    };

    RequestState *req = nullptr;
    MicroserviceId ms = kInvalidMicroservice;
    CallContext *parent = nullptr;
    /** This node's stage list, resolved from stageFlat at creation so
     *  fan-out and stage resumption skip the table walk. */
    const std::vector<std::vector<DependencyGraph::Call>> *stages = nullptr;
    int stageIdx = -1;
    int pendingChildren = 0;
    SimTime clientSend = 0;
    SimTime receiveTime = 0;
    SimTime procDone = 0;
    /** [0] = primary (and retries), [1] = hedged duplicate. */
    AttemptSlot attempts[2];
    int retriesUsed = 0;
};

/** One queue entry: a call attempt waiting for a thread. */
struct Simulation::QueuedJob
{
    CallContext *ctx = nullptr;
    std::uint64_t attempt = 0;
};

struct Simulation::ContainerState
{
    ContainerId id = 0;
    MicroserviceId ms = kInvalidMicroservice;
    HostId host = kInvalidHost;
    /** Position in the owning deployment's slot vector (swap-and-pop
     *  keeps it current; see eraseContainerSlot). */
    std::size_t slot = 0;
    int threads = 1;
    /** Cached cpuCores / threads: both operands are fixed at creation,
     *  so startJob/finishJob skip the per-job division. */
    double perThreadCores = 0.0;
    int busy = 0;
    bool draining = false;
    /** Killed by fault injection: in-flight results are discarded. */
    bool crashed = false;
    /** Simulated time at which this container starts accepting work. */
    SimTime readyAt = 0;
    /** Dedicated to one service under non-sharing partitions. */
    ServiceId dedicatedService = kInvalidService;
    std::vector<std::deque<QueuedJob>> queues;
    std::size_t queuedTotal = 0;
    std::uint64_t callsThisMinute = 0;
};

/**
 * One microservice's deployment: stable container pointers in
 * swap-and-pop slot order. Scale-in is O(1) (no vector::erase shifting)
 * at the cost of slot order diverging from insertion order — cold
 * readers that the goldens pin to "deployment order" (FP accumulation
 * at minute boundaries, eviction candidates, crash victims, views,
 * backlog redistribution) re-sort by container id, which is assigned
 * monotonically and therefore IS the insertion sequence.
 */
struct Simulation::Deployment
{
    std::vector<ContainerState *> slots;
    /**
     * Packed pick keys parallel to slots: (busy + queued) << 32 | id.
     * Comparing keys is exactly the (load, id-tiebreak) least-loaded
     * order, so the dispatch fast path scans one contiguous word per
     * container instead of chasing every slot pointer. Maintained by
     * refreshLoadKey() at every busy/queued mutation.
     */
    std::vector<std::uint64_t> loadKeys;
    /** Slots the fast scan may not treat as universally eligible
     *  (draining or dedicated to one service). */
    int specials = 0;
    /** Upper bound on every slot's readyAt (monotone under now()):
     *  once now() passes it, no slot is still starting up. */
    SimTime readyHorizon = 0;
    /** Live (non-draining) containers across all partitions. */
    int live = 0;
    std::size_t rrCursor = 0;
    /** A container existed here at least once (minute bookkeeping and
     *  scrapes keep reporting a deployment after it scales to zero). */
    bool everDeployed = false;
    /** Log-normal parameters derived from the profile's serviceCv,
     *  cached so the per-job service-time draw skips the log/sqrt
     *  re-derivation. Revalidated against the live cv on every use, so
     *  profiles may still be mutated mid-run. */
    double cachedCv = -1.0;
    double sigma = 0.0;
    double halfSigma2 = 0.0;
};

/** Cold-path view of a deployment in insertion (container-id) order —
 *  the pre-refactor vector order every order-sensitive reader expects. */
std::vector<Simulation::ContainerState *>
Simulation::insertionOrdered(const Deployment &dep)
{
    std::vector<ContainerState *> ordered(dep.slots);
    std::sort(ordered.begin(), ordered.end(),
              [](const ContainerState *a, const ContainerState *b) {
                  return a->id < b->id;
              });
    return ordered;
}

namespace {

/** Sorted key list for deterministic unordered_map traversal. */
template <typename Map>
std::vector<typename Map::key_type>
sortedKeys(const Map &map)
{
    std::vector<typename Map::key_type> keys;
    keys.reserve(map.size());
    for (const auto &entry : map)
        keys.push_back(entry.first);
    std::sort(keys.begin(), keys.end());
    return keys;
}

} // namespace

struct Simulation::RequestState
{
    RequestId id = 0;
    ServiceId service = kInvalidService;
    std::size_t serviceIndex = 0;
    SimTime arrival = 0;
    bool traced = false;
    /** Telemetry span sampling (independent of the SpanCollector's). */
    bool telemetrySampled = false;
    bool failed = false;
};

struct Simulation::MinuteScratch
{
    /**
     * Dense per-microservice latency accumulators (index = catalog id).
     * msTouched lists the ids with samples this minute, so the minute
     * flush clears only those sets — clear() keeps each SampleSet's
     * capacity, making the steady state allocation-free.
     */
    std::vector<SampleSet> msLatency;
    std::vector<MicroserviceId> msTouched;
    // Stage layout storage (node-based map: stable addresses) plus the
    // flat index the hot fan-out path reads: stageFlat[serviceIndex][ms]
    // points at that node's stage list.
    std::vector<std::unordered_map<
        MicroserviceId, std::vector<std::vector<DependencyGraph::Call>>>>
        stageCache;
    std::vector<
        std::vector<const std::vector<std::vector<DependencyGraph::Call>> *>>
        stageFlat;
    // Context pools (freed wholesale on destruction).
    std::deque<CallContext> ctxStorage;
    std::vector<CallContext *> ctxFree;
    std::deque<RequestState> reqStorage;
    std::vector<RequestState *> reqFree;

    SampleSet &
    latencyFor(MicroserviceId ms)
    {
        if (static_cast<std::size_t>(ms) >= msLatency.size())
            msLatency.resize(static_cast<std::size_t>(ms) + 1);
        SampleSet &set = msLatency[ms];
        if (set.empty())
            msTouched.push_back(ms);
        return set;
    }

    void
    flushLatencies()
    {
        for (MicroserviceId ms : msTouched)
            msLatency[ms].clear();
        msTouched.clear();
    }

    CallContext *
    acquireCtx()
    {
        if (!ctxFree.empty()) {
            CallContext *ctx = ctxFree.back();
            ctxFree.pop_back();
            *ctx = CallContext{};
            return ctx;
        }
        ctxStorage.emplace_back();
        return &ctxStorage.back();
    }

    void
    releaseCtx(CallContext *ctx)
    {
        // Double-release guard: a live context always has its request
        // set (acquire's caller assigns it) and both attempt slots are
        // retired before any release path runs. A stale queue entry that
        // somehow re-released a pooled context would trip here.
        ERMS_ASSERT_MSG(ctx->req != nullptr,
                        "CallContext released twice");
        ERMS_ASSERT(ctx->attempts[0].id == 0 && ctx->attempts[1].id == 0);
        ctx->req = nullptr;
        ctxFree.push_back(ctx);
    }

    RequestState *
    acquireReq()
    {
        if (!reqFree.empty()) {
            RequestState *req = reqFree.back();
            reqFree.pop_back();
            *req = RequestState{};
            return req;
        }
        reqStorage.emplace_back();
        return &reqStorage.back();
    }

    void
    releaseReq(RequestState *req)
    {
        ERMS_ASSERT_MSG(req->id != 0, "RequestState released twice");
        req->id = 0;
        reqFree.push_back(req);
    }
};

// ---------------------------------------------------------------------
// Construction / configuration
// ---------------------------------------------------------------------

Simulation::Simulation(const MicroserviceCatalog &catalog, SimConfig config)
    : catalog_(catalog), config_(config), rng_(config.seed),
      placement_(std::make_shared<SpreadPlacementPolicy>()),
      scratch_(std::make_unique<MinuteScratch>())
{
    ERMS_ASSERT(config.hostCount > 0);
    ERMS_ASSERT(config.horizonMinutes > 0);
    ERMS_ASSERT(config.warmupMinutes >= 0);
    hosts_.resize(static_cast<std::size_t>(config.hostCount));
    for (int i = 0; i < config.hostCount; ++i) {
        HostState &host = hosts_[static_cast<std::size_t>(i)];
        host.id = static_cast<HostId>(i);
        host.cpuCapacity = config.hostCpuCores;
        host.memCapacity = config.hostMemMb;
        refreshMemUtil(host);
    }
    if (const char *env = std::getenv("ERMS_EVENT_ENGINE")) {
        setEventEngine(std::strcmp(env, "legacy") == 0
                           ? EventEngine::LegacyHeap
                           : EventEngine::Calendar);
    }
}

Simulation::~Simulation() = default;

SimTime
Simulation::now() const
{
    return engine_ == EventEngine::LegacyHeap ? legacy_->now()
                                              : events_.now();
}

void
Simulation::setEventEngine(EventEngine engine)
{
    ERMS_ASSERT_MSG(!ran_, "setEventEngine must precede run()");
    engine_ = engine;
    if (engine == EventEngine::LegacyHeap && legacy_ == nullptr)
        legacy_ = std::make_unique<LegacyEventQueue>();
}

void
Simulation::post(SimTime t, const EventRecord &event)
{
    if (engine_ == EventEngine::LegacyHeap) {
        // Faithful pre-refactor cost model: a heap-allocating closure
        // per event pushed through the binary heap. Dispatch order is
        // identical (same (time, seq) assignment), so a legacy run is
        // byte-identical to a calendar run.
        legacy_->schedule(t, [this, event] { dispatchEvent(event); });
        return;
    }
    events_.post(t, event);
}

void
Simulation::postAfter(SimTime delay, const EventRecord &event)
{
    post(now() + delay, event);
}

void
Simulation::setBackgroundLoad(HostId host, double cpu_util, double mem_util)
{
    ERMS_ASSERT(host < hosts_.size());
    hosts_[host].bgCpu = std::clamp(cpu_util, 0.0, 1.0);
    hosts_[host].bgMem = std::clamp(mem_util, 0.0, 1.0);
    refreshMemUtil(hosts_[host]);
}

void
Simulation::setBackgroundLoadAll(double cpu_util, double mem_util)
{
    for (std::size_t i = 0; i < hosts_.size(); ++i)
        setBackgroundLoad(static_cast<HostId>(i), cpu_util, mem_util);
}

void
Simulation::setPlacementPolicy(std::shared_ptr<PlacementPolicy> policy)
{
    ERMS_ASSERT(policy != nullptr);
    placement_ = std::move(policy);
}

void
Simulation::setSchedulingDelta(double delta)
{
    ERMS_ASSERT(delta >= 0.0 && delta < 1.0);
    config_.schedulingDelta = delta;
}

void
Simulation::setSpanCollector(SpanCollector *collector)
{
    spans_ = collector;
}

void
Simulation::setMonitor(telemetry::SimMonitor *monitor)
{
    ERMS_ASSERT_MSG(!ran_, "setMonitor must precede run()");
    monitor_ = monitor;
}

void
Simulation::setFaultConfig(const FaultConfig &config)
{
    ERMS_ASSERT_MSG(!ran_, "setFaultConfig must precede run()");
    ERMS_ASSERT(config.crashesPerMinute >= 0.0);
    ERMS_ASSERT(config.slowdownsPerMinute >= 0.0);
    ERMS_ASSERT(config.callFailureProbability >= 0.0 &&
                config.callFailureProbability <= 1.0);
    ERMS_ASSERT(config.slowdownFactor >= 1.0);
    ERMS_ASSERT(config.azEvents.eventsPerMinute >= 0.0);
    ERMS_ASSERT(config.azEvents.azCount > 0);
    faultConfig_ = config;
    faultsEnabled_ = config.anyFaults();
    // Dedicated streams (1 = transient failures, 2 = retry jitter) keep
    // per-call draws off the request-path RNG and off each other, so
    // enabling one knob never shifts another knob's draw sequence.
    callFaultRng_ = Rng(deriveRunSeed(config.seed, 1));
    resilienceRng_ = Rng(deriveRunSeed(config.seed, 2));
}

void
Simulation::setResilienceConfig(const ResilienceConfig &config)
{
    ERMS_ASSERT_MSG(!ran_, "setResilienceConfig must precede run()");
    ERMS_ASSERT(config.maxRetries >= 0);
    ERMS_ASSERT(config.retryBackoffMs >= 0.0);
    ERMS_ASSERT(config.retryBackoffMultiplier >= 1.0);
    ERMS_ASSERT(config.retryJitter >= 0.0);
    ERMS_ASSERT(config.timeoutMs >= 0.0);
    ERMS_ASSERT(config.hedgeDelayMs >= 0.0);
    resilience_ = config;
}

void
Simulation::setMinuteCallback(std::function<void(Simulation &, int)> callback)
{
    minuteCallback_ = std::move(callback);
}

void
Simulation::addService(ServiceWorkload service)
{
    ERMS_ASSERT(service.graph != nullptr);
    ERMS_ASSERT(service.id != kInvalidService);
    ERMS_ASSERT_MSG(!serviceIndex_.count(service.id),
                    "service added twice");
    serviceIndex_.emplace(service.id, services_.size());

    // Cache each node's stage layout for fast fan-out. The map owns the
    // storage (node-based, stable addresses); the flat per-id pointer
    // table is what launchStage indexes per call.
    std::unordered_map<MicroserviceId,
                       std::vector<std::vector<DependencyGraph::Call>>>
        cache;
    MicroserviceId max_node = 0;
    for (MicroserviceId id : service.graph->nodes()) {
        cache.emplace(id, service.graph->stages(id));
        max_node = std::max(max_node, id);
    }
    std::vector<const std::vector<std::vector<DependencyGraph::Call>> *>
        flat(static_cast<std::size_t>(max_node) + 1, nullptr);
    for (const auto &[id, stages] : cache)
        flat[id] = &stages;
    scratch_->stageCache.push_back(std::move(cache));
    scratch_->stageFlat.push_back(std::move(flat));

    services_.push_back(std::move(service));
    metricCache_.emplace_back();
    arrivalsByIndex_.push_back(0);
    lastMinuteArrivalsByIndex_.push_back(0);
    rebuildRankTable();
}

// ---------------------------------------------------------------------
// Host accounting
// ---------------------------------------------------------------------

void
Simulation::noteBusyChange(HostState &host, double delta_cores)
{
    const SimTime t = now();
    host.busyIntegral +=
        host.busyCores * static_cast<double>(t - host.lastUpdate);
    host.lastUpdate = t;
    host.busyCores = std::max(0.0, host.busyCores + delta_cores);
}

double
Simulation::hostCpuUtil(const HostState &host) const
{
    double util = host.bgCpu + host.busyCores / host.cpuCapacity;
    // A straggling host reports inflated utilization, feeding the
    // interference model exactly like iBench background load does.
    if (host.activeSlowdowns > 0)
        util += faultConfig_.slowdownCpuInflate;
    return std::clamp(util, 0.0, 1.0);
}

void
Simulation::refreshMemUtil(HostState &host)
{
    host.memUtilCached = std::clamp(
        host.bgMem + host.memAllocated / host.memCapacity, 0.0, 1.0);
}

double
Simulation::hostMemUtil(const HostState &host) const
{
    return host.memUtilCached;
}

Interference
Simulation::hostInterference(HostId host) const
{
    ERMS_ASSERT(host < hosts_.size());
    const HostState &h = hosts_[host];
    return Interference{hostCpuUtil(h), hostMemUtil(h)};
}

Interference
Simulation::clusterInterference() const
{
    Interference avg;
    for (const HostState &host : hosts_) {
        avg.cpuUtil += hostCpuUtil(host);
        avg.memUtil += hostMemUtil(host);
    }
    avg.cpuUtil /= static_cast<double>(hosts_.size());
    avg.memUtil /= static_cast<double>(hosts_.size());
    return avg;
}

std::vector<HostView>
Simulation::hostViews() const
{
    std::vector<HostView> views;
    views.reserve(hosts_.size());
    for (const HostState &host : hosts_) {
        HostView view;
        view.id = host.id;
        view.cpuCapacityCores = host.cpuCapacity;
        view.memCapacityMb = host.memCapacity;
        view.cpuAllocatedCores = host.cpuAllocated;
        view.memAllocatedMb = host.memAllocated;
        view.backgroundCpuUtil = host.bgCpu;
        view.backgroundMemUtil = host.bgMem;
        view.cpuUtil = hostCpuUtil(host);
        view.memUtil = hostMemUtil(host);
        views.push_back(view);
    }
    return views;
}

// ---------------------------------------------------------------------
// Deployment management
// ---------------------------------------------------------------------

Simulation::Deployment &
Simulation::deploymentFor(MicroserviceId ms)
{
    if (static_cast<std::size_t>(ms) >= deployments_.size())
        deployments_.resize(static_cast<std::size_t>(ms) + 1);
    return deployments_[ms];
}

Simulation::ContainerState *
Simulation::acquireContainer()
{
    if (!containerFree_.empty()) {
        ContainerState *container = containerFree_.back();
        containerFree_.pop_back();
        *container = ContainerState{};
        return container;
    }
    containerArena_.push_back(std::make_unique<ContainerState>());
    return containerArena_.back().get();
}

inline void
Simulation::refreshLoadKey(ContainerState &container)
{
    Deployment &dep = deployments_[container.ms];
    dep.loadKeys[container.slot] =
        ((static_cast<std::uint64_t>(container.busy) +
          container.queuedTotal)
         << 32) |
        container.id;
}

inline void
Simulation::markDraining(ContainerState &container)
{
    if (container.draining)
        return;
    container.draining = true;
    // Dedicated slots are already counted special; don't double-count.
    if (container.dedicatedService == kInvalidService)
        ++deployments_[container.ms].specials;
}

void
Simulation::eraseContainerSlot(ContainerState &victim)
{
    ERMS_ASSERT(victim.busy == 0 && victim.queuedTotal == 0);
    Deployment &dep = deployments_[victim.ms];
    auto &slots = dep.slots;
    const std::size_t index = victim.slot;
    ERMS_ASSERT(index < slots.size() && slots[index] == &victim);
    slots[index] = slots.back();
    slots[index]->slot = index;
    slots.pop_back();
    // Pick keys move with their slots.
    dep.loadKeys[index] = dep.loadKeys.back();
    dep.loadKeys.pop_back();
    if (victim.draining || victim.dedicatedService != kInvalidService)
        --dep.specials;
    containerFree_.push_back(&victim);
}

Simulation::ContainerState *
Simulation::addContainer(MicroserviceId ms, ServiceId dedicated)
{
    const MicroserviceProfile &profile = catalog_.profile(ms);
    const std::size_t host_index = placement_->placeContainer(
        hostViews(), profile.resources.cpuCores, profile.resources.memoryMb);
    ERMS_ASSERT(host_index < hosts_.size());
    HostState &host = hosts_[host_index];
    host.cpuAllocated += profile.resources.cpuCores;
    host.memAllocated += profile.resources.memoryMb;
    refreshMemUtil(host);
    ++host.containerCount;

    ContainerState *container = acquireContainer();
    container->id = nextContainer_++;
    container->ms = ms;
    container->host = host.id;
    container->threads = std::max(1, profile.threadsPerContainer);
    container->perThreadCores =
        profile.resources.cpuCores / container->threads;
    container->queues.resize(1);
    container->dedicatedService = dedicated;
    container->readyAt = now() + toSimTime(config_.containerStartupMs);
    Deployment &dep = deploymentFor(ms);
    container->slot = dep.slots.size();
    dep.slots.push_back(container);
    dep.loadKeys.push_back(container->id); // load 0
    if (dedicated != kInvalidService)
        ++dep.specials;
    dep.readyHorizon = std::max(dep.readyHorizon, container->readyAt);
    ++dep.live;
    dep.everDeployed = true;
    return container;
}

void
Simulation::reassignQueue(ContainerState &container)
{
    for (auto &queue : container.queues) {
        while (!queue.empty()) {
            const QueuedJob job = queue.front();
            queue.pop_front();
            --container.queuedTotal;
            refreshLoadKey(container);
            const int slot = slotOf(job.ctx, job.attempt);
            if (slot < 0)
                continue; // stale entry (attempt already abandoned)
            job.ctx->attempts[slot].queued = false;
            job.ctx->attempts[slot].container = nullptr;
            routeAttempt(job.ctx, job.attempt, /*count_call=*/false);
        }
    }
}

void
Simulation::removeContainer(MicroserviceId ms, ServiceId dedicated)
{
    ERMS_ASSERT_MSG(static_cast<std::size_t>(ms) < deployments_.size() &&
                        !deployments_[ms].slots.empty(),
                    "no container to remove");
    Deployment &dep = deployments_[ms];

    // Candidates: non-draining containers of the requested pool, in
    // insertion order (the eviction pick is an index into this list).
    const std::vector<ContainerState *> ordered = insertionOrdered(dep);
    std::vector<std::size_t> candidate_hosts;
    std::vector<ContainerState *> candidates;
    for (ContainerState *container : ordered) {
        if (!container->draining &&
            container->dedicatedService == dedicated) {
            candidate_hosts.push_back(container->host);
            candidates.push_back(container);
        }
    }
    if (candidates.empty())
        return; // everything is already draining

    const MicroserviceProfile &profile = catalog_.profile(ms);
    const std::size_t pick = placement_->evictContainer(
        hostViews(), candidate_hosts, profile.resources.cpuCores,
        profile.resources.memoryMb);
    ERMS_ASSERT(pick < candidates.size());
    ContainerState &victim = *candidates[pick];

    // Free host bookkeeping immediately (capacity is returned on drain
    // start; busy threads finish their current jobs).
    HostState &host = hosts_[victim.host];
    host.cpuAllocated -= profile.resources.cpuCores;
    host.memAllocated -= profile.resources.memoryMb;
    refreshMemUtil(host);
    --host.containerCount;
    --dep.live;

    if (victim.busy == 0 && victim.queuedTotal == 0) {
        eraseContainerSlot(victim);
        return;
    }
    markDraining(victim);
    reassignQueue(victim);
}

int
Simulation::countPool(MicroserviceId ms, ServiceId dedicated) const
{
    if (static_cast<std::size_t>(ms) >= deployments_.size())
        return 0;
    int live = 0;
    for (const ContainerState *container : deployments_[ms].slots) {
        if (!container->draining &&
            container->dedicatedService == dedicated)
            ++live;
    }
    return live;
}

// After a scale-out, spread backlog that accumulated in the old
// containers across the enlarged deployment (requests queue at the
// service endpoint, not at an individual replica). Drain every queue
// first, then redistribute, so redispatch cannot loop.
void
Simulation::redistributeBacklog(MicroserviceId ms)
{
    if (static_cast<std::size_t>(ms) >= deployments_.size())
        return;
    std::vector<QueuedJob> backlog;
    for (ContainerState *container : insertionOrdered(deployments_[ms])) {
        for (auto &queue : container->queues) {
            while (!queue.empty()) {
                backlog.push_back(queue.front());
                queue.pop_front();
                --container->queuedTotal;
            }
        }
        refreshLoadKey(*container);
    }
    for (const QueuedJob &job : backlog) {
        const int slot = slotOf(job.ctx, job.attempt);
        if (slot < 0)
            continue; // stale entry (attempt already abandoned)
        job.ctx->attempts[slot].queued = false;
        job.ctx->attempts[slot].container = nullptr;
        routeAttempt(job.ctx, job.attempt, /*count_call=*/false);
    }
}

void
Simulation::setContainerCount(MicroserviceId ms, int count)
{
    ERMS_ASSERT(count >= 0);
    const bool scaled_out = countPool(ms, kInvalidService) < count;
    while (countPool(ms, kInvalidService) < count)
        addContainer(ms);
    while (countPool(ms, kInvalidService) > count)
        removeContainer(ms);

    if (scaled_out)
        redistributeBacklog(ms);
}

int
Simulation::containerCount(MicroserviceId ms) const
{
    if (static_cast<std::size_t>(ms) >= deployments_.size())
        return 0;
    return deployments_[ms].live;
}

void
Simulation::setDedicatedContainerCount(MicroserviceId ms, ServiceId service,
                                       int count)
{
    ERMS_ASSERT(count >= 0);
    ERMS_ASSERT(service != kInvalidService);
    const bool scaled_out = countPool(ms, service) < count;
    while (countPool(ms, service) < count)
        addContainer(ms, service);
    while (countPool(ms, service) > count)
        removeContainer(ms, service);

    if (scaled_out)
        redistributeBacklog(ms);
}

void
Simulation::applyPlan(const GlobalPlan &plan)
{
    // Plan maps are unordered; apply in microservice-id order so the
    // placement sequence (and with it every downstream draw) never
    // depends on unspecified hash iteration order.
    if (plan.policy == SharingPolicy::NonSharing &&
        !plan.services.empty()) {
        // Faithful §2.3 non-sharing: a dedicated partition per service
        // at every microservice it uses, no shared pool.
        for (const auto &alloc : plan.services) {
            for (MicroserviceId ms : sortedKeys(alloc.perMicroservice)) {
                setDedicatedContainerCount(
                    ms, alloc.service,
                    alloc.perMicroservice.at(ms).containers);
            }
        }
        for (MicroserviceId ms : sortedKeys(plan.containers))
            setContainerCount(ms, 0);
        clearPriorities();
        return;
    }
    for (MicroserviceId ms : sortedKeys(plan.containers))
        setContainerCount(ms, plan.containers.at(ms));
    if (plan.policy == SharingPolicy::Priority) {
        for (MicroserviceId ms : sortedKeys(plan.priorityOrder))
            setPriorityOrder(ms, plan.priorityOrder.at(ms));
    } else {
        clearPriorities();
    }
}

void
Simulation::setPriorityOrder(MicroserviceId ms,
                             const std::vector<ServiceId> &order)
{
    auto &ranks = priorityRanks_[ms];
    ranks.clear();
    for (std::size_t i = 0; i < order.size(); ++i)
        ranks[order[i]] = static_cast<int>(i);
    rebuildRankTable();
}

void
Simulation::clearPriorities()
{
    priorityRanks_.clear();
    rebuildRankTable();
}

int
Simulation::priorityRank(MicroserviceId ms, ServiceId service) const
{
    auto it = priorityRanks_.find(ms);
    if (it == priorityRanks_.end())
        return 0;
    auto rank_it = it->second.find(service);
    if (rank_it == it->second.end())
        return static_cast<int>(it->second.size()); // lowest priority
    return rank_it->second;
}

// Project the configured priority orders onto a dense
// [microservice][service-index] table so the per-enqueue rank lookup is
// two array indexes instead of two hash probes.
void
Simulation::rebuildRankTable()
{
    anyPriorities_ = !priorityRanks_.empty();
    rankTable_.clear();
    if (!anyPriorities_)
        return;
    MicroserviceId max_ms = 0;
    for (const auto &[ms, ranks] : priorityRanks_)
        max_ms = std::max(max_ms, ms);
    rankTable_.resize(static_cast<std::size_t>(max_ms) + 1);
    for (const auto &[ms, ranks] : priorityRanks_) {
        auto &row = rankTable_[ms];
        row.resize(services_.size());
        for (std::size_t i = 0; i < services_.size(); ++i)
            row[i] = priorityRank(ms, services_[i].id);
    }
}

Simulation::ContainerState *
Simulation::pickContainer(MicroserviceId ms, ServiceId service)
{
    if (static_cast<std::size_t>(ms) >= deployments_.size() ||
        deployments_[ms].live == 0) {
        // Kubernetes keeps at least one replica; mirror that.
        return addContainer(ms);
    }
    Deployment &dep = deployments_[ms];
    const SimTime t = now();

    // Steady-state fast path (least-loaded only): no draining or
    // dedicated slots and every startup window has passed, so all slots
    // are eligible and the winner is simply the minimum packed
    // (load, id) key — one contiguous word per container instead of a
    // pointer chase through every ContainerState.
    if (config_.dispatch != DispatchPolicy::RoundRobin &&
        dep.specials == 0 && t >= dep.readyHorizon) {
        const std::uint64_t *keys = dep.loadKeys.data();
        const std::size_t n = dep.loadKeys.size();
        std::size_t best = 0;
        for (std::size_t i = 1; i < n; ++i) {
            if (keys[i] < keys[best])
                best = i;
        }
        return dep.slots[best];
    }

    // A container is eligible if it is up, started, and either shared or
    // dedicated to this request's service.
    const auto eligible = [&](const ContainerState &container,
                              bool allow_starting) {
        if (container.draining)
            return false;
        if (!allow_starting && container.readyAt > t)
            return false;
        return container.dedicatedService == kInvalidService ||
               container.dedicatedService == service;
    };

    for (const bool allow_starting : {false, true}) {
        if (config_.dispatch == DispatchPolicy::RoundRobin) {
            // Self-contained RR pass: probe one full rotation; when no
            // candidate is eligible, move on to the next pass (and only
            // after both passes to the spill-over below) instead of
            // falling through into the least-loaded scan. The cursor is
            // kept wrapped to the deployment size so it cannot grow
            // unbounded and self-rebases when the deployment shrinks.
            std::size_t &cursor = dep.rrCursor;
            const auto &slots = dep.slots;
            cursor %= slots.size();
            for (std::size_t probe = 0; probe < slots.size(); ++probe) {
                ContainerState *candidate = slots[cursor];
                cursor = (cursor + 1) % slots.size();
                if (eligible(*candidate, allow_starting))
                    return candidate;
            }
            continue;
        }
        ContainerState *best = nullptr;
        std::size_t best_load = 0;
        for (ContainerState *container : dep.slots) {
            if (!eligible(*container, allow_starting))
                continue;
            const std::size_t load =
                static_cast<std::size_t>(container->busy) +
                container->queuedTotal;
            // Tie-break on id: slots are swap-and-pop ordered, and ids
            // are the insertion sequence, so min-(load, id) is exactly
            // the pre-refactor "first lowest-load in deployment order"
            // winner the goldens pin.
            if (best == nullptr || load < best_load ||
                (load == best_load && container->id < best->id)) {
                best = container;
                best_load = load;
            }
        }
        if (best != nullptr)
            return best;
        // Nothing ready yet: retry allowing still-starting containers
        // (requests queue there until startup completes).
    }
    // Only draining or foreign-partition containers remain: spill over.
    return addContainer(ms);
}

// ---------------------------------------------------------------------
// Request execution
// ---------------------------------------------------------------------

double
Simulation::serviceRate(std::size_t service_index) const
{
    const ServiceWorkload &svc = services_[service_index];
    if (!svc.rateSeries.empty()) {
        const std::size_t minute = std::min(
            static_cast<std::size_t>(currentMinute_),
            svc.rateSeries.size() - 1);
        return svc.rateSeries[minute];
    }
    return svc.rate;
}

void
Simulation::scheduleArrival(std::size_t service_index)
{
    const double rate = serviceRate(service_index);
    if (rate <= 0.0) {
        // Re-check at the next minute boundary.
        const SimTime next_minute = (now() / kMinute + 1) * kMinute;
        post(next_minute + 1,
             EventRecord{.a = service_index, .type = kEvArrivalRecheck});
        return;
    }
    const double mean_gap_us = static_cast<double>(kMinute) / rate;
    const SimTime gap =
        static_cast<SimTime>(std::max(1.0, rng_.exponential(mean_gap_us)));
    postAfter(gap, EventRecord{.a = service_index, .type = kEvArrival});
}

void
Simulation::startRequest(std::size_t service_index)
{
    const ServiceWorkload &svc = services_[service_index];
    RequestState *req = scratch_->acquireReq();
    req->id = nextRequest_++;
    req->service = svc.id;
    req->serviceIndex = service_index;
    req->arrival = now();
    req->traced = spans_ != nullptr && spans_->sampleRequest(req->id);
    req->telemetrySampled =
        monitor_ != nullptr && monitor_->sampleSpan(req->id);
    ++metrics_.requestsGenerated;
    ++arrivalsByIndex_[service_index];
    if (monitor_ != nullptr)
        monitor_->onRequestArrival(svc.id);

    CallContext *root = scratch_->acquireCtx();
    root->req = req;
    root->ms = svc.graph->root();
    root->parent = nullptr;
    root->stages = scratch_->stageFlat[service_index][root->ms];
    root->clientSend = now();

    issueCall(root);
}

// A new call is born: count it and launch its primary attempt.
void
Simulation::issueCall(CallContext *ctx)
{
    ++metrics_.faults.firstAttempts;
    launchAttempt(ctx, 0);
}

// Create an attempt in the given slot, arm its timeout (and, for
// primary attempts, the hedge timer), and send it over the network.
void
Simulation::launchAttempt(CallContext *ctx, int slot)
{
    CallContext::AttemptSlot &attempt = ctx->attempts[slot];
    attempt.id = nextAttempt_++;
    attempt.container = nullptr;
    attempt.queued = false;
    attempt.receiveTime = 0;
    const std::uint64_t id = attempt.id;

    if (resilience_.timeoutMs > 0.0) {
        postAfter(toSimTime(resilience_.timeoutMs),
                  EventRecord{.a = id, .p1 = ctx,
                              .type = kEvAttemptTimeout});
    }
    if (slot == 0 && resilience_.hedgeDelayMs > 0.0) {
        postAfter(toSimTime(resilience_.hedgeDelayMs),
                  EventRecord{.a = id, .p1 = ctx, .type = kEvHedgeTimer});
    }

    const SimTime network = toSimTime(catalog_.profile(ctx->ms).networkMs);
    postAfter(network,
              EventRecord{.a = id, .p1 = ctx, .type = kEvAttemptNetwork});
}

void
Simulation::enqueueAttempt(ContainerState &container, CallContext *ctx,
                           std::uint64_t attempt)
{
    // Dense rank lookup (rankTable_ mirrors priorityRank()): the common
    // no-priorities case is a single flag test.
    int rank = 0;
    if (anyPriorities_ &&
        static_cast<std::size_t>(ctx->ms) < rankTable_.size()) {
        const auto &row = rankTable_[ctx->ms];
        if (!row.empty())
            rank = row[ctx->req->serviceIndex];
    }
    if (static_cast<std::size_t>(rank) >= container.queues.size())
        container.queues.resize(static_cast<std::size_t>(rank) + 1);
    container.queues[static_cast<std::size_t>(rank)].push_back(
        QueuedJob{ctx, attempt});
    ++container.queuedTotal;
    refreshLoadKey(container);
    const int slot = slotOf(ctx, attempt);
    ERMS_ASSERT(slot >= 0);
    ctx->attempts[slot].queued = true;
}

void
Simulation::routeAttempt(CallContext *ctx, std::uint64_t attempt,
                         bool count_call)
{
    const int slot = slotOf(ctx, attempt);
    if (slot < 0)
        return; // attempt abandoned while in network transit

    ContainerState *container = pickContainer(ctx->ms, ctx->req->service);
    ctx->attempts[slot].container = container;
    if (count_call) {
        ctx->attempts[slot].receiveTime = now();
        ++container->callsThisMinute;
    }

    if (container->readyAt > now()) {
        // Container still starting: queue the job and kick the queue
        // once startup completes. The event looks the container up by
        // id when it fires: scale-in may have erased it (its queue gets
        // reassigned on drain).
        enqueueAttempt(*container, ctx, attempt);
        post(container->readyAt,
             EventRecord{.a = ctx->ms, .b = container->id,
                         .type = kEvContainerReady});
        return;
    }

    if (container->busy < container->threads) {
        startJob(*container, ctx, attempt);
        return;
    }
    enqueueAttempt(*container, ctx, attempt);
}

// Startup completed: hand every idle thread a queued job. The
// container is found by id — scale-in may have erased it between the
// kick being scheduled and firing (its queue gets reassigned on drain).
void
Simulation::onContainerReady(MicroserviceId ms, ContainerId id)
{
    if (static_cast<std::size_t>(ms) >= deployments_.size())
        return;
    for (ContainerState *candidate : deployments_[ms].slots) {
        if (candidate->id != id)
            continue;
        while (candidate->busy < candidate->threads) {
            const QueuedJob next = popQueuedJob(*candidate);
            if (next.ctx == nullptr)
                break;
            startJob(*candidate, next.ctx, next.attempt);
        }
        return;
    }
}

void
Simulation::startJob(ContainerState &container, CallContext *ctx,
                     std::uint64_t attempt)
{
    const MicroserviceProfile &profile = catalog_.profile(container.ms);
    HostState &host = hosts_[container.host];
    ++container.busy;
    refreshLoadKey(container);
    noteBusyChange(host, container.perThreadCores);

    const double cpu = hostCpuUtil(host);
    const double mem = hostMemUtil(host);
    double mean_ms =
        profile.baseServiceMs *
        (1.0 + profile.cpuSlowdown * cpu + profile.memSlowdown * mem);
    // Straggler window: every µs of work on this host takes longer.
    if (host.activeSlowdowns > 0)
        mean_ms *= faultConfig_.slowdownFactor;
    double proc_ms;
    if (profile.serviceCv == 0.0) {
        proc_ms = mean_ms;
    } else {
        Deployment &dep = deployments_[container.ms];
        if (dep.cachedCv != profile.serviceCv) {
            const double sigma2 =
                std::log(1.0 + profile.serviceCv * profile.serviceCv);
            dep.sigma = std::sqrt(sigma2);
            dep.halfSigma2 = 0.5 * sigma2;
            dep.cachedCv = profile.serviceCv;
        }
        proc_ms =
            rng_.logNormalMeanSigma(mean_ms, dep.sigma, dep.halfSigma2);
    }
    const SimTime proc = std::max<SimTime>(1, toSimTime(proc_ms));
    // Carry the container: ctx's attempt slots may be retargeted
    // before the job completes (timeout, hedge win), but the thread and
    // host bookkeeping always belongs to this container.
    postAfter(proc, EventRecord{.a = attempt, .p1 = ctx, .p2 = &container,
                                .type = kEvJobFinish});
}

Simulation::QueuedJob
Simulation::popQueuedJob(ContainerState &container)
{
    while (container.queuedTotal > 0) {
        // Collect the non-empty priority classes, highest priority first.
        std::size_t last_nonempty = 0;
        std::size_t nonempty = 0;
        for (std::size_t rank = 0; rank < container.queues.size();
             ++rank) {
            if (!container.queues[rank].empty()) {
                ++nonempty;
                last_nonempty = rank;
            }
        }
        ERMS_ASSERT(nonempty > 0);

        std::size_t chosen = last_nonempty;
        if (nonempty > 1) {
            // Paper §5.3.2: the l-th highest priority class is served
            // with probability delta^(l-1) * (1 - delta); the lowest
            // class takes the remaining mass.
            const double delta = config_.schedulingDelta;
            for (std::size_t rank = 0; rank < last_nonempty; ++rank) {
                if (container.queues[rank].empty())
                    continue;
                if (rng_.bernoulli(1.0 - delta)) {
                    chosen = rank;
                    break;
                }
            }
        }

        const QueuedJob job = container.queues[chosen].front();
        container.queues[chosen].pop_front();
        --container.queuedTotal;
        refreshLoadKey(container);
        const int slot = slotOf(job.ctx, job.attempt);
        if (slot < 0)
            continue; // stale entry (abandoned attempt); drop it
        job.ctx->attempts[slot].queued = false;
        return job;
    }
    return QueuedJob{};
}

void
Simulation::finishJob(CallContext *ctx, std::uint64_t attempt,
                      ContainerState *container)
{
    HostState &host = hosts_[container->host];
    --container->busy;
    refreshLoadKey(*container);
    noteBusyChange(host, -container->perThreadCores);

    // Read fault state before the container can be recycled below.
    const bool crashed = container->crashed;

    // Give the freed thread to the next queued job (delta-priority rule).
    const QueuedJob next = popQueuedJob(*container);
    if (next.ctx != nullptr) {
        startJob(*container, next.ctx, next.attempt);
    } else if (container->draining && container->busy == 0 &&
               container->queuedTotal == 0) {
        eraseContainerSlot(*container);
    }
    // `container` may be recycled from here on; don't touch it.

    const int slot = slotOf(ctx, attempt);
    if (slot < 0)
        return; // abandoned attempt (timeout / hedge lost): discard

    if (crashed) {
        // The container died mid-processing; the response is lost.
        failAttempt(ctx, attempt, FailureKind::Crash);
        return;
    }
    if (faultsEnabled_ && faultConfig_.callFailureProbability > 0.0 &&
        callFaultRng_.bernoulli(faultConfig_.callFailureProbability)) {
        failAttempt(ctx, attempt, FailureKind::Transient);
        return;
    }
    deliverCall(ctx, slot);
}

// A call attempt produced a response: record the microservice latency
// sample, settle the hedge race, and resume the dependency graph.
void
Simulation::deliverCall(CallContext *ctx, int slot)
{
    const MicroserviceProfile &profile = catalog_.profile(ctx->ms);
    ctx->procDone = now();
    ctx->receiveTime = ctx->attempts[slot].receiveTime;

    // Ground-truth microservice latency sample: queueing + processing +
    // transmission (§2.2 includes transmission in L_i).
    const double own_ms =
        toMillis(ctx->procDone - ctx->receiveTime) + profile.networkMs;
    scratch_->latencyFor(ctx->ms).add(own_ms);
    if (monitor_ != nullptr)
        monitor_->onMicroserviceLatency(ctx->ms, own_ms,
                                        ctx->req->telemetrySampled);

    if (slot == 1)
        ++metrics_.faults.hedgeWins;
    // Cancel the losing attempt (hedge-winner cancellation): dequeue it
    // if still waiting; a running loser finishes and is discarded.
    cancelAttempt(ctx, 1 - slot);
    ctx->attempts[slot] = CallContext::AttemptSlot{};

    ctx->stageIdx = 0;
    launchStage(ctx);
}

void
Simulation::launchStage(CallContext *ctx)
{
    const auto &stages = *ctx->stages;
    const auto &flat = scratch_->stageFlat[ctx->req->serviceIndex];

    while (static_cast<std::size_t>(ctx->stageIdx) < stages.size()) {
        const auto &stage = stages[static_cast<std::size_t>(ctx->stageIdx)];
        int launched = 0;
        for (const DependencyGraph::Call &call : stage) {
            int copies = static_cast<int>(call.multiplicity);
            const double frac =
                call.multiplicity - static_cast<double>(copies);
            if (frac > 0.0 && rng_.bernoulli(frac))
                ++copies;
            for (int copy = 0; copy < copies; ++copy) {
                CallContext *child = scratch_->acquireCtx();
                child->req = ctx->req;
                child->ms = call.callee;
                child->parent = ctx;
                child->stages = flat[call.callee];
                child->clientSend = now();
                ++launched;
                issueCall(child);
            }
        }
        if (launched > 0) {
            ctx->pendingChildren = launched;
            return; // resume when the stage completes
        }
        ++ctx->stageIdx; // all multiplicities rounded to zero
    }
    completeContext(ctx);
}

void
Simulation::completeContext(CallContext *ctx)
{
    const SimTime send_time = now();
    const MicroserviceProfile &profile = catalog_.profile(ctx->ms);
    const SimTime network = toSimTime(profile.networkMs);

    if (ctx->req->traced && spans_ != nullptr) {
        CallSpan span;
        span.request = ctx->req->id;
        span.service = ctx->req->service;
        span.caller =
            ctx->parent ? ctx->parent->ms : kInvalidMicroservice;
        span.callee = ctx->ms;
        span.clientSend = ctx->clientSend;
        span.clientReceive = send_time + network;
        span.serverReceive = ctx->receiveTime;
        span.serverSend = send_time;
        spans_->record(span);
    }

    CallContext *parent = ctx->parent;
    RequestState *req = ctx->req;
    scratch_->releaseCtx(ctx);
    propagateCompletion(parent, req, network);
}

// A call ran out of retry budget: the caller receives an error. The
// request keeps flowing (degraded response) but is marked failed —
// no downstream work of this call executes, no latency sample or span
// is recorded for it.
void
Simulation::failCall(CallContext *ctx)
{
    ++metrics_.faults.callsFailed;
    ctx->req->failed = true;
    const SimTime network = toSimTime(catalog_.profile(ctx->ms).networkMs);
    CallContext *parent = ctx->parent;
    RequestState *req = ctx->req;
    scratch_->releaseCtx(ctx);
    propagateCompletion(parent, req, network);
}

void
Simulation::propagateCompletion(CallContext *parent, RequestState *req,
                                SimTime network)
{
    if (parent != nullptr) {
        postAfter(network, EventRecord{.p1 = parent, .type = kEvChildDone});
    } else {
        postAfter(network, EventRecord{.p1 = req, .type = kEvRequestDone});
    }
}

void
Simulation::onChildDone(CallContext *parent)
{
    ERMS_ASSERT(parent->pendingChildren > 0);
    if (--parent->pendingChildren == 0) {
        ++parent->stageIdx;
        launchStage(parent);
    }
}

void
Simulation::finishRequest(RequestState *req)
{
    const SimTime t = now();
    const double latency_ms = toMillis(t - req->arrival);
    const std::uint64_t minute = t / kMinute;

    // Lazily resolved pointers into the metrics maps: the maps keep
    // their create-on-first-touch semantics (an unobserved service has
    // no entry), but steady-state requests pay an array index instead
    // of a hash probe per lookup.
    ServiceMetricCache &cache = metricCache_[req->serviceIndex];

    if (req->failed) {
        // Failed requests violate their SLA by definition; they carry
        // no meaningful latency, so they are accounted separately (see
        // SimMetrics::sloViolationRate).
        ++metrics_.requestsFailed;
        if (minute >= static_cast<std::uint64_t>(config_.warmupMinutes)) {
            if (cache.failed == nullptr)
                cache.failed = &metrics_.failedByService[req->service];
            ++*cache.failed;
        }
        if (monitor_ != nullptr)
            monitor_->onRequestFailed(req->service);
        scratch_->releaseReq(req);
        return;
    }
    ++metrics_.requestsCompleted;

    if (cache.byMinute == nullptr)
        cache.byMinute = &metrics_.endToEndByMinute[req->service];
    cache.byMinute->add(minute, latency_ms);
    if (minute >= static_cast<std::uint64_t>(config_.warmupMinutes)) {
        if (cache.endToEnd == nullptr)
            cache.endToEnd = &metrics_.endToEndMs[req->service];
        cache.endToEnd->add(latency_ms);
    }
    if (monitor_ != nullptr) {
        const double sla = services_[req->serviceIndex].slaMs;
        monitor_->onRequestComplete(req->service, latency_ms,
                                    sla > 0.0 && latency_ms > sla,
                                    req->telemetrySampled);
    }

    scratch_->releaseReq(req);
}

// ---------------------------------------------------------------------
// Fault injection and resilience
// ---------------------------------------------------------------------

int
Simulation::slotOf(const CallContext *ctx, std::uint64_t attempt) const
{
    if (attempt == 0)
        return -1;
    if (ctx->attempts[0].id == attempt)
        return 0;
    if (ctx->attempts[1].id == attempt)
        return 1;
    return -1;
}

void
Simulation::dequeueAttempt(CallContext *ctx, int slot)
{
    CallContext::AttemptSlot &attempt = ctx->attempts[slot];
    if (!attempt.queued || attempt.container == nullptr)
        return;
    for (auto &queue : attempt.container->queues) {
        for (auto it = queue.begin(); it != queue.end(); ++it) {
            if (it->ctx == ctx && it->attempt == attempt.id) {
                queue.erase(it);
                --attempt.container->queuedTotal;
                refreshLoadKey(*attempt.container);
                attempt.queued = false;
                return;
            }
        }
    }
    ERMS_ASSERT_MSG(false, "queued attempt missing from its queue");
}

void
Simulation::cancelAttempt(CallContext *ctx, int slot)
{
    if (ctx->attempts[slot].id == 0)
        return;
    dequeueAttempt(ctx, slot);
    ctx->attempts[slot] = CallContext::AttemptSlot{};
}

void
Simulation::onAttemptTimeout(CallContext *ctx, std::uint64_t attempt)
{
    if (slotOf(ctx, attempt) < 0)
        return; // already delivered, failed, or replaced
    // A running attempt is abandoned: its thread finishes the job but
    // the result is discarded (work is not preempted).
    failAttempt(ctx, attempt, FailureKind::Timeout);
}

void
Simulation::maybeHedge(CallContext *ctx, std::uint64_t attempt)
{
    // Launch the hedge only if the primary attempt that armed this
    // timer is still the one in flight and nothing has answered yet.
    if (ctx->attempts[0].id != attempt || ctx->attempts[1].id != 0)
        return;
    ++metrics_.faults.hedgesLaunched;
    if (monitor_ != nullptr)
        monitor_->onHedge(ctx->ms);
    launchAttempt(ctx, 1);
}

void
Simulation::failAttempt(CallContext *ctx, std::uint64_t attempt,
                        FailureKind kind)
{
    const int slot = slotOf(ctx, attempt);
    if (slot < 0)
        return;
    switch (kind) {
      case FailureKind::Timeout:
        ++metrics_.faults.callTimeouts;
        if (monitor_ != nullptr)
            monitor_->onTimeout(ctx->ms);
        break;
      case FailureKind::Transient:
        ++metrics_.faults.transientFailures;
        if (monitor_ != nullptr)
            monitor_->onTransientFailure(ctx->ms);
        break;
      case FailureKind::Crash:
        ++metrics_.faults.crashFailures;
        if (monitor_ != nullptr)
            monitor_->onCrashFailure(ctx->ms);
        break;
    }
    dequeueAttempt(ctx, slot);
    ctx->attempts[slot] = CallContext::AttemptSlot{};

    if (ctx->attempts[1 - slot].id != 0)
        return; // the hedge race partner is still in flight

    if (ctx->retriesUsed < resilience_.maxRetries) {
        ++ctx->retriesUsed;
        ++metrics_.faults.callRetries;
        if (monitor_ != nullptr)
            monitor_->onRetry(ctx->ms);
        // Exponential backoff with uniform jitter, drawn from the
        // resilience stream so it never perturbs workload randomness.
        double backoff_ms =
            resilience_.retryBackoffMs *
            std::pow(resilience_.retryBackoffMultiplier,
                     ctx->retriesUsed - 1);
        if (resilience_.retryJitter > 0.0)
            backoff_ms *=
                1.0 + resilience_.retryJitter * resilienceRng_.uniform();
        // Both slots are now empty: the call is quiescent until the
        // retry fires, so carrying ctx without a guard is safe.
        postAfter(std::max<SimTime>(1, toSimTime(backoff_ms)),
                  EventRecord{.p1 = ctx, .type = kEvRetryLaunch});
        return;
    }
    failCall(ctx);
}

void
Simulation::onCrashEvent(std::uint64_t victim_draw)
{
    // Deterministic victim order: microservice id (the dense table is
    // id-ascending by construction), then insertion order within each
    // deployment.
    std::vector<ContainerState *> candidates;
    for (const Deployment &dep : deployments_) {
        for (ContainerState *container : insertionOrdered(dep)) {
            if (!container->draining)
                candidates.push_back(container);
        }
    }
    if (candidates.empty())
        return;
    crashContainer(
        *candidates[victim_draw % candidates.size()]);
}

void
Simulation::crashContainer(ContainerState &victim)
{
    ++metrics_.faults.containerCrashes;
    if (monitor_ != nullptr)
        monitor_->onContainerCrash(victim.ms);
    victim.crashed = true;
    markDraining(victim);
    --deployments_[victim.ms].live;

    // Capacity is lost immediately: countPool()/containerCount() drop,
    // so controllers observe the loss and the ordinary scaling path
    // (applyPlan/setContainerCount) replaces the capacity on its next
    // pass even without auto-restart.
    const MicroserviceProfile &profile = catalog_.profile(victim.ms);
    HostState &host = hosts_[victim.host];
    host.cpuAllocated -= profile.resources.cpuCores;
    host.memAllocated -= profile.resources.memoryMb;
    refreshMemUtil(host);
    --host.containerCount;

    // Queued work fails over (resilience permitting).
    std::vector<QueuedJob> lost;
    for (const auto &queue : victim.queues)
        for (const QueuedJob &job : queue)
            lost.push_back(job);
    for (const QueuedJob &job : lost)
        failAttempt(job.ctx, job.attempt, FailureKind::Crash);
    for (auto &queue : victim.queues)
        queue.clear(); // drop stale leftovers, if any
    victim.queuedTotal = 0;
    refreshLoadKey(victim);

    // Model the kubelet restarting the pod after a delay; the restart
    // then pays the usual containerStartupMs before accepting work.
    if (faultConfig_.restartDelayMs >= 0.0) {
        postAfter(
            std::max<SimTime>(1, toSimTime(faultConfig_.restartDelayMs)),
            EventRecord{.a = victim.ms, .b = victim.dedicatedService,
                        .type = kEvContainerRestart});
    }

    // In-flight jobs keep their threads until completion; finishJob
    // discards their results and erases the container once drained.
    if (victim.busy == 0)
        eraseContainerSlot(victim);
}

void
Simulation::installFaultSchedule(SimTime horizon)
{
    if (!faultsEnabled_)
        return;
    const FaultSchedule schedule =
        buildFaultSchedule(faultConfig_, config_.hostCount, horizon);
    if (monitor_ != nullptr)
        monitor_->recordFaultSchedule(schedule.crashes.size(),
                                      schedule.slowdowns.size());
    for (const CrashEvent &crash : schedule.crashes) {
        post(crash.at,
             EventRecord{.a = crash.victimDraw, .type = kEvCrash});
    }
    for (const SlowdownWindow &window : schedule.slowdowns) {
        post(window.start,
             EventRecord{.a = window.host, .type = kEvSlowdownStart});
        post(window.end,
             EventRecord{.a = window.host, .type = kEvSlowdownEnd});
    }
}

// ---------------------------------------------------------------------
// Telemetry scraping
// ---------------------------------------------------------------------

// Fill the back buffer from live dispatch state and swap it to the
// front. The only writer, and it runs on the simulation thread; readers
// copy the front buffer under the mutex (clusterSnapshot), so the hot
// structures themselves are never shared across threads.
void
Simulation::publishSnapshot()
{
    ClusterSnapshot &snap = snapBuffers_[1 - snapFront_];
    snap.at = now();
    snap.sequence = snapBuffers_[snapFront_].sequence + 1;
    snap.hosts.clear();
    for (const HostState &host : hosts_) {
        snap.hosts.push_back(ClusterSnapshot::HostSample{
            host.id, hostCpuUtil(host), hostMemUtil(host)});
    }
    snap.deployments.clear();
    for (MicroserviceId ms = 0;
         static_cast<std::size_t>(ms) < deployments_.size(); ++ms) {
        const Deployment &dep = deployments_[ms];
        if (!dep.everDeployed)
            continue;
        ClusterSnapshot::DeploymentSample sample;
        sample.ms = ms;
        for (const ContainerState *container : dep.slots) {
            if (container->draining)
                continue;
            ++sample.live;
            sample.busy += container->busy;
            sample.queued += container->queuedTotal;
        }
        snap.deployments.push_back(sample);
    }
    std::lock_guard<std::mutex> lock(snapMutex_);
    snapFront_ = 1 - snapFront_;
}

ClusterSnapshot
Simulation::clusterSnapshot() const
{
    std::lock_guard<std::mutex> lock(snapMutex_);
    return snapBuffers_[snapFront_];
}

// Freeze the gauge series into the monitor from the published snapshot
// (never the live dispatch structures). Strictly read-only with respect
// to simulation state: no RNG draws, no request events — attaching a
// monitor cannot change what the simulation computes, only what
// observers get to see.
void
Simulation::scrapeTelemetry()
{
    ERMS_ASSERT(monitor_ != nullptr);
    publishSnapshot();
    // Reading the front buffer without the lock is safe here: this is
    // the writer thread, so no swap can happen concurrently.
    const ClusterSnapshot &snap = snapBuffers_[snapFront_];
    for (const ClusterSnapshot::HostSample &host : snap.hosts)
        monitor_->recordHostUtil(host.id, host.cpuUtil, host.memUtil);
    for (const ClusterSnapshot::DeploymentSample &dep : snap.deployments)
        monitor_->recordDeployment(dep.ms, dep.live, dep.queued, dep.busy);
    monitor_->takeSnapshot(snap.at);
}

void
Simulation::scheduleScrape(SimTime at, SimTime horizon)
{
    if (at > horizon)
        return;
    post(at, EventRecord{.a = horizon, .type = kEvScrape});
}

// ---------------------------------------------------------------------
// Minute bookkeeping and the main loop
// ---------------------------------------------------------------------

void
Simulation::onMinuteBoundary()
{
    const std::uint64_t minute = static_cast<std::uint64_t>(currentMinute_);

    // Close the utilization integrals for the elapsed minute.
    std::vector<double> host_cpu_avg(hosts_.size(), 0.0);
    std::vector<double> host_mem_avg(hosts_.size(), 0.0);
    for (std::size_t i = 0; i < hosts_.size(); ++i) {
        HostState &host = hosts_[i];
        noteBusyChange(host, 0.0); // flush integral to now
        const double avg_busy =
            host.busyIntegral / static_cast<double>(kMinute);
        host_cpu_avg[i] =
            std::clamp(host.bgCpu + avg_busy / host.cpuCapacity, 0.0, 1.0);
        host_mem_avg[i] = hostMemUtil(host);
        host.busyIntegral = 0.0;
    }

    // Emit profiling records d_i^j per microservice, id ascending —
    // fixed, specified order (the old map traversal emitted records in
    // unspecified hash order, which the goldens now pin away).
    for (MicroserviceId ms = 0;
         static_cast<std::size_t>(ms) < deployments_.size(); ++ms) {
        Deployment &deployment = deployments_[ms];
        if (!deployment.everDeployed)
            continue;
        int live = 0;
        double cpu_sum = 0.0, mem_sum = 0.0;
        std::uint64_t calls = 0;
        // Insertion order (id ascending) for the floating-point sums:
        // swap-and-pop slots permute the raw vector, and FP addition is
        // not associative, so the slot order must never leak in here.
        for (ContainerState *container : insertionOrdered(deployment)) {
            if (container->draining)
                continue;
            ++live;
            cpu_sum += host_cpu_avg[container->host];
            mem_sum += host_mem_avg[container->host];
            calls += container->callsThisMinute;
            container->callsThisMinute = 0;
        }
        metrics_.containerTimeline[ms].emplace_back(minute, live);
        if (live == 0)
            continue;

        if (static_cast<std::size_t>(ms) >= scratch_->msLatency.size() ||
            scratch_->msLatency[ms].empty())
            continue;
        SampleSet &latency = scratch_->msLatency[ms];

        ProfilingRecord record;
        record.microservice = ms;
        record.minute = minute;
        record.tailLatencyMs = latency.p95();
        record.meanLatencyMs = latency.mean();
        record.sampleCount = latency.count();
        record.perContainerCalls =
            static_cast<double>(calls) / static_cast<double>(live);
        record.cpuUtil = cpu_sum / live;
        record.memUtil = mem_sum / live;
        record.containers = live;
        metrics_.profiling.push_back(record);
    }
    scratch_->flushLatencies();

    lastMinuteArrivalsByIndex_ = arrivalsByIndex_;
    std::fill(arrivalsByIndex_.begin(), arrivalsByIndex_.end(), 0);

    publishSnapshot();

    const int ended_minute = currentMinute_;
    ++currentMinute_;

    if (coordinatedPause_) {
        // Hand control back to the coordinator at exactly the callback
        // point: the callback slot and the next boundary post run on
        // resume (advanceToMinuteBoundary), after the coordinator had
        // its turn — so coordinator mutations land at the same event-
        // sequence position as an inline minute callback would.
        pausedMinute_ = ended_minute;
        pauseRequested_ = true;
        return;
    }

    if (minuteCallback_)
        minuteCallback_(*this, ended_minute);

    postNextMinuteBoundary();
}

void
Simulation::postNextMinuteBoundary()
{
    if (currentMinute_ < config_.horizonMinutes) {
        post(static_cast<SimTime>(currentMinute_ + 1) * kMinute,
             EventRecord{.type = kEvMinuteBoundary});
    }
}

std::vector<ContainerView>
Simulation::containerViews(MicroserviceId ms) const
{
    std::vector<ContainerView> views;
    if (static_cast<std::size_t>(ms) >= deployments_.size())
        return views;
    const Deployment &dep = deployments_[ms];
    views.reserve(dep.slots.size());
    // Insertion order (id ascending), matching the pre-slot-map API.
    for (const ContainerState *container : insertionOrdered(dep)) {
        ContainerView view;
        view.id = container->id;
        view.host = container->host;
        view.dedicatedService = container->dedicatedService;
        view.threads = container->threads;
        view.busy = container->busy;
        view.queued = container->queuedTotal;
        view.draining = container->draining;
        view.crashed = container->crashed;
        view.readyAt = container->readyAt;
        views.push_back(view);
    }
    return views;
}

std::size_t
Simulation::roundRobinCursor(MicroserviceId ms) const
{
    return static_cast<std::size_t>(ms) < deployments_.size()
               ? deployments_[ms].rrCursor
               : 0;
}

double
Simulation::observedRate(ServiceId service) const
{
    auto it = serviceIndex_.find(service);
    if (it == serviceIndex_.end())
        return 0.0;
    return static_cast<double>(lastMinuteArrivalsByIndex_[it->second]);
}

// The engine-hot path: one typed record in, one handler out. Keeping
// this a flat switch over POD payloads (instead of a std::function per
// event) is what makes the simulator allocation-free per event; see
// docs/event_engine.md.
void
Simulation::dispatchEvent(const EventRecord &event)
{
    switch (event.type) {
      case kEvArrival: {
        const std::size_t index = static_cast<std::size_t>(event.a);
        startRequest(index);
        scheduleArrival(index);
        break;
      }
      case kEvArrivalRecheck:
        scheduleArrival(static_cast<std::size_t>(event.a));
        break;
      case kEvAttemptNetwork:
        routeAttempt(static_cast<CallContext *>(event.p1), event.a,
                     /*count_call=*/true);
        break;
      case kEvAttemptTimeout:
        onAttemptTimeout(static_cast<CallContext *>(event.p1), event.a);
        break;
      case kEvHedgeTimer:
        maybeHedge(static_cast<CallContext *>(event.p1), event.a);
        break;
      case kEvContainerReady:
        onContainerReady(static_cast<MicroserviceId>(event.a),
                         static_cast<ContainerId>(event.b));
        break;
      case kEvJobFinish:
        finishJob(static_cast<CallContext *>(event.p1), event.a,
                  static_cast<ContainerState *>(event.p2));
        break;
      case kEvRetryLaunch:
        launchAttempt(static_cast<CallContext *>(event.p1), 0);
        break;
      case kEvChildDone:
        onChildDone(static_cast<CallContext *>(event.p1));
        break;
      case kEvRequestDone:
        finishRequest(static_cast<RequestState *>(event.p1));
        break;
      case kEvMinuteBoundary:
        onMinuteBoundary();
        break;
      case kEvCrash:
        onCrashEvent(event.a);
        break;
      case kEvSlowdownStart: {
        const HostId host = static_cast<HostId>(event.a);
        ++hosts_[host].activeSlowdowns;
        ++metrics_.faults.slowdownWindows;
        if (monitor_ != nullptr)
            monitor_->onSlowdownWindow(host);
        break;
      }
      case kEvSlowdownEnd:
        --hosts_[static_cast<HostId>(event.a)].activeSlowdowns;
        break;
      case kEvContainerRestart: {
        const MicroserviceId ms = static_cast<MicroserviceId>(event.a);
        ++metrics_.faults.containerRestarts;
        if (monitor_ != nullptr)
            monitor_->onContainerRestart(ms);
        addContainer(ms, static_cast<ServiceId>(event.b));
        redistributeBacklog(ms);
        break;
      }
      case kEvScrape: {
        scrapeTelemetry();
        const SimTime interval = std::max<SimTime>(
            1, toSimTime(monitor_->config().scrapeIntervalSec * 1000.0));
        scheduleScrape(now() + interval, /*horizon=*/event.a);
        break;
      }
      default:
        // kCallbackEvent or a foreign record: hand back to the queue
        // (only reachable on the calendar engine; the legacy engine
        // wraps every typed record in its own closure).
        events_.runCallback(event);
        break;
    }
}

void
Simulation::setCoordinatedPause(bool on)
{
    ERMS_ASSERT_MSG(!ran_, "setCoordinatedPause must precede beginRun()");
    coordinatedPause_ = on;
}

void
Simulation::beginRun()
{
    ERMS_ASSERT_MSG(!ran_, "Simulation::run may only be called once");
    ran_ = true;

    runHorizon_ = static_cast<SimTime>(config_.horizonMinutes) * kMinute;
    // Fault schedule first: with faults disabled this adds no events,
    // keeping the event sequence identical to a fault-free build.
    installFaultSchedule(runHorizon_);
    for (std::size_t i = 0; i < services_.size(); ++i)
        scheduleArrival(i);
    post(kMinute, EventRecord{.type = kEvMinuteBoundary});

    if (monitor_ != nullptr) {
        // Baseline scrape at t=0 (all counters zero) so the first
        // interval scrape already yields a meaningful rate delta.
        scrapeTelemetry();
        const SimTime interval = std::max<SimTime>(
            1, toSimTime(monitor_->config().scrapeIntervalSec * 1000.0));
        scheduleScrape(interval, runHorizon_);
    }

    publishSnapshot();
}

void
Simulation::drainCalendar()
{
    // Drain bucket-sized runs in one pass: the queue hands back a span
    // (usually zero-copy into its sorted bucket, covering many
    // timestamps), so the per-event cost inside a run is the dispatch
    // switch plus one clock store and one spill probe. Dispatch may
    // post freely — same-bucket posts divert to the spill heap, so the
    // span stays valid; when a spilled event must run before the
    // span's next record, the unconsumed tail goes back to the queue
    // and the loop re-enters. The resulting order is exactly what
    // one-at-a-time next() would produce — the determinism contract
    // the goldens pin.
    std::uint64_t dispatched = 0;
    EventBatch batch;
    while (events_.nextBatch(runHorizon_, batch)) {
        std::size_t consumed = 0;
        while (consumed < batch.count) {
            const EventRecord &event = batch.data[consumed];
            events_.advanceTo(event.time);
            dispatchEvent(event);
            ++consumed;
            if (pauseRequested_) {
                // A minute boundary paused the run: hand the untouched
                // tail back so resume re-enters at the exact next
                // record — identical order to an uninterrupted drain.
                if (consumed < batch.count)
                    events_.returnTail(batch.count - consumed);
                metrics_.eventsDispatched += dispatched + consumed;
                return;
            }
            if (consumed < batch.count &&
                events_.interleavePending(batch.data[consumed])) {
                events_.returnTail(batch.count - consumed);
                break;
            }
        }
        dispatched += consumed;
    }
    metrics_.eventsDispatched += dispatched;
}

void
Simulation::run()
{
    ERMS_ASSERT_MSG(!coordinatedPause_,
                    "coordinated simulations step via advanceToMinuteBoundary");
    beginRun();

    if (engine_ == EventEngine::LegacyHeap) {
        metrics_.eventsDispatched = legacy_->runUntil(runHorizon_);
        return;
    }
    drainCalendar();
}

int
Simulation::advanceToMinuteBoundary()
{
    ERMS_ASSERT_MSG(coordinatedPause_ && ran_,
                    "advanceToMinuteBoundary requires setCoordinatedPause + "
                    "beginRun");
    if (pauseRequested_) {
        // Resume: run the deferred callback slot for the minute that
        // just ended, then post the next boundary — the exact sequence
        // onMinuteBoundary performs inline in uncoordinated runs, so
        // any events the callback posts get the same seq numbers.
        pauseRequested_ = false;
        const int ended_minute = pausedMinute_;
        pausedMinute_ = -1;
        if (minuteCallback_)
            minuteCallback_(*this, ended_minute);
        postNextMinuteBoundary();
    }

    if (engine_ == EventEngine::LegacyHeap) {
        metrics_.eventsDispatched +=
            legacy_->runUntil(runHorizon_, &pauseRequested_);
    } else {
        drainCalendar();
    }
    return pausedMinute_;
}

} // namespace erms
