#include "metrics.hpp"

namespace erms {

double
SimMetrics::p95(ServiceId service) const
{
    auto it = endToEndMs.find(service);
    if (it == endToEndMs.end() || it->second.empty())
        return 0.0;
    return it->second.p95();
}

double
SimMetrics::violationRate(ServiceId service, double sla_ms) const
{
    auto it = endToEndMs.find(service);
    if (it == endToEndMs.end() || it->second.empty())
        return 0.0;
    return it->second.fractionAbove(sla_ms);
}

std::vector<ProfilingRecord>
SimMetrics::profilingFor(MicroserviceId microservice) const
{
    std::vector<ProfilingRecord> out;
    for (const ProfilingRecord &record : profiling) {
        if (record.microservice == microservice)
            out.push_back(record);
    }
    return out;
}

} // namespace erms
