#include "metrics.hpp"

namespace erms {

double
FaultStats::retryAmplification() const
{
    if (firstAttempts == 0)
        return 1.0;
    return static_cast<double>(firstAttempts + callRetries +
                               hedgesLaunched) /
           static_cast<double>(firstAttempts);
}

double
SimMetrics::p95(ServiceId service) const
{
    auto it = endToEndMs.find(service);
    if (it == endToEndMs.end() || it->second.empty())
        return 0.0;
    return it->second.p95();
}

double
SimMetrics::violationRate(ServiceId service, double sla_ms) const
{
    auto it = endToEndMs.find(service);
    if (it == endToEndMs.end() || it->second.empty())
        return 0.0;
    return it->second.fractionAbove(sla_ms);
}

double
SimMetrics::sloViolationRate(ServiceId service, double sla_ms) const
{
    std::uint64_t successes = 0;
    double late = 0.0;
    auto it = endToEndMs.find(service);
    if (it != endToEndMs.end() && !it->second.empty()) {
        successes = it->second.count();
        late = it->second.fractionAbove(sla_ms) *
               static_cast<double>(successes);
    }
    std::uint64_t failed = 0;
    auto failed_it = failedByService.find(service);
    if (failed_it != failedByService.end())
        failed = failed_it->second;

    const std::uint64_t total = successes + failed;
    if (total == 0)
        return 0.0;
    return (late + static_cast<double>(failed)) /
           static_cast<double>(total);
}

std::vector<ProfilingRecord>
SimMetrics::profilingFor(MicroserviceId microservice) const
{
    std::vector<ProfilingRecord> out;
    for (const ProfilingRecord &record : profiling) {
        if (record.microservice == microservice)
            out.push_back(record);
    }
    return out;
}

} // namespace erms
