/**
 * @file
 * Discrete-event engine core: a time-ordered queue of callbacks with
 * deterministic FIFO tie-breaking for simultaneous events.
 */

#ifndef ERMS_SIM_EVENT_QUEUE_HPP
#define ERMS_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hpp"

namespace erms {

/** Priority queue of (time, insertion-order) tagged callbacks. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule a callback at absolute simulated time t (>= now). */
    void schedule(SimTime t, Callback cb);

    /** Schedule a callback delay microseconds from now. */
    void scheduleAfter(SimTime delay, Callback cb);

    /** Current simulated time (time of the last dispatched event). */
    SimTime now() const { return now_; }

    bool empty() const { return events_.empty(); }
    std::size_t pending() const { return events_.size(); }

    /**
     * Dispatch events in order until the queue drains or the next event
     * is later than horizon. Events scheduled while running are
     * dispatched too if they fall within the horizon.
     * @return number of events dispatched.
     */
    std::uint64_t runUntil(SimTime horizon);

    /** Dispatch everything (no horizon). */
    std::uint64_t runAll();

  private:
    struct Event
    {
        SimTime time;
        std::uint64_t seq;
        Callback cb;
    };
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.time != b.time)
                return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events_;
    SimTime now_ = 0;
    std::uint64_t next_seq_ = 0;
};

} // namespace erms

#endif // ERMS_SIM_EVENT_QUEUE_HPP
