/**
 * @file
 * Discrete-event engine core: typed, pool-recycled event records in a
 * two-level calendar queue with deterministic (time, insertion-seq)
 * FIFO tie-breaking for simultaneous events.
 *
 * Design (see docs/event_engine.md):
 *  - Events are plain-old-data EventRecord values: a type tag plus two
 *    payload words and two payload pointers. Scheduling one copies 56
 *    bytes into a recycled bucket vector — no per-event heap
 *    allocation, no callable construction. The owner dispatches records
 *    through its own switch (Simulation::dispatchEvent).
 *  - std::function callbacks remain supported for cold paths and tests:
 *    schedule() parks the callable in a recycled slot pool and enqueues
 *    a kCallbackEvent record pointing at the slot.
 *  - Time ordering uses a calendar ("timing wheel") of power-of-two
 *    buckets over a sliding window, with a far list for events beyond
 *    the window and a tiny early heap for events scheduled behind an
 *    already-advanced window. Each bucket is heap-ordered by the strict
 *    total order (time, seq) when it becomes current, so dispatch order
 *    is exactly the order the old binary-heap engine produced — the
 *    determinism contract every golden table pins.
 *
 * LegacyEventQueue (legacy_event_queue.hpp) is the pre-refactor binary
 * heap kept for differential tests and the perf trajectory.
 */

#ifndef ERMS_SIM_EVENT_QUEUE_HPP
#define ERMS_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"

namespace erms {

/** Record type tag reserved for pooled std::function callbacks. */
inline constexpr std::uint32_t kCallbackEvent = 0;

/**
 * One scheduled event. POD: owners define their own type tags (> 0) and
 * payload conventions; the queue only reads/stamps time and seq.
 */
struct EventRecord
{
    SimTime time = 0;       ///< absolute dispatch time (stamped by post)
    std::uint64_t seq = 0;  ///< insertion order (stamped by post)
    std::uint64_t a = 0;    ///< payload word
    std::uint64_t b = 0;    ///< payload word
    void *p1 = nullptr;     ///< payload pointer
    void *p2 = nullptr;     ///< payload pointer
    std::uint32_t type = kCallbackEvent;
};

/**
 * Two-level calendar queue of EventRecords, dispatching in exactly
 * (time, seq) ascending order.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /**
     * @param bucket_count  number of wheel buckets (power of two).
     * @param bucket_width  time span of one bucket in microseconds
     *                      (power of two). The wheel window covers
     *                      bucket_count * bucket_width microseconds.
     */
    explicit EventQueue(std::size_t bucket_count = 2048,
                        SimTime bucket_width = 32);

    /** Schedule a typed record at absolute simulated time t (>= now).
     *  rec.time and rec.seq are overwritten by the queue. */
    void post(SimTime t, EventRecord rec);

    /** Schedule a typed record delay microseconds from now. */
    void postAfter(SimTime delay, EventRecord rec);

    /** Schedule a callback at absolute simulated time t (>= now). The
     *  callable is parked in a recycled slot; the event itself is a
     *  kCallbackEvent record. */
    void schedule(SimTime t, Callback cb);

    /** Schedule a callback delay microseconds from now. */
    void scheduleAfter(SimTime delay, Callback cb);

    /** Current simulated time (time of the last dispatched event). */
    SimTime now() const { return now_; }

    bool empty() const { return pending_ == 0; }
    std::size_t pending() const { return pending_; }

    /**
     * Pop the next event if its time is <= horizon (inclusive — an
     * event posted exactly at the horizon during dispatch is still
     * eligible). On success advances now() to the event time and
     * returns true. Otherwise leaves the event queued, advances now()
     * to the horizon, and returns false.
     */
    bool next(SimTime horizon, EventRecord &out);

    /** Invoke and recycle a kCallbackEvent record returned by next().
     *  The slot is released before the callable runs, so a callback may
     *  schedule further callbacks (and reuse its own slot) safely. */
    void runCallback(const EventRecord &rec);

    /**
     * Dispatch events in order until the queue drains or the next event
     * is later than horizon. Events scheduled while running are
     * dispatched too if they fall within the horizon (inclusive). Only
     * valid for queues holding callback events; typed records trip an
     * assertion (their owner must drive next() itself). On return
     * now() == max(now, horizon).
     * @return number of events dispatched.
     */
    std::uint64_t runUntil(SimTime horizon);

    /** Dispatch everything (no horizon; now() ends at the last event). */
    std::uint64_t runAll();

    /** Callback slots ever allocated (recycle observability: stays flat
     *  when schedule/dispatch cycles reuse slots). */
    std::size_t callbackPoolSize() const { return slots_.size(); }

  private:
    struct Later
    {
        bool
        operator()(const EventRecord &a, const EventRecord &b) const
        {
            if (a.time != b.time)
                return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    /** Find the next event without popping: returns false when empty,
     *  else sets t to its time and leaves it at a known position
     *  (early_ front, or the heapified cursor bucket's front). */
    bool peekTime(SimTime &t);

    /** Pop the event found by the immediately preceding peekTime(). */
    EventRecord popTop();

    /** Move far-list events that now fall inside the window into their
     *  buckets; recompute farMin_. */
    void pourFar();

    // calendar wheel ----------------------------------------------------
    std::vector<std::vector<EventRecord>> buckets_;
    std::size_t bucketCount_;
    SimTime bucketWidth_;
    SimTime span_;          ///< bucketCount_ * bucketWidth_
    SimTime windowStart_ = 0;
    std::size_t cursor_ = 0;
    bool activeHeapified_ = false;
    std::size_t wheelCount_ = 0; ///< records currently in buckets

    // overflow levels ---------------------------------------------------
    std::vector<EventRecord> far_;   ///< time >= windowStart_ + span_
    SimTime farMin_ = 0;
    std::vector<EventRecord> early_; ///< heap; time < windowStart_

    // callback slot pool ------------------------------------------------
    std::vector<Callback> slots_;
    std::vector<std::uint32_t> freeSlots_;

    std::size_t pending_ = 0;
    SimTime now_ = 0;
    std::uint64_t next_seq_ = 0;
};

} // namespace erms

#endif // ERMS_SIM_EVENT_QUEUE_HPP
