/**
 * @file
 * Discrete-event engine core: typed, pool-recycled event records in a
 * two-level calendar queue with deterministic (time, insertion-seq)
 * FIFO tie-breaking for simultaneous events.
 *
 * Design (see docs/event_engine.md):
 *  - Events are plain-old-data EventRecord values: a type tag plus two
 *    payload words and two payload pointers. Scheduling one copies 48
 *    bytes into a recycled bucket vector — no per-event heap
 *    allocation, no callable construction. The owner dispatches records
 *    through its own switch (Simulation::dispatchEvent).
 *  - std::function callbacks remain supported for cold paths and tests:
 *    schedule() parks the callable in a recycled slot pool and enqueues
 *    a kCallbackEvent record pointing at the slot.
 *  - Time ordering uses a calendar ("timing wheel") of power-of-two
 *    buckets over a sliding window, with a far list for events beyond
 *    the window and a tiny early heap for events scheduled behind an
 *    already-advanced window. When a bucket becomes current it is
 *    sorted once (ascending) and consumed through a head index: spent
 *    records stay in place as a stale prefix and the whole bucket is
 *    discarded with one clear() when it drains. Events posted into the
 *    already-sorted current bucket go to a small spill heap that
 *    interleaves by (time, seq). Dispatch order is exactly the strict
 *    total order (time, seq) the old binary-heap engine produced — the
 *    determinism contract every golden table pins — but the
 *    steady-state per-event cost is an index bump plus one comparison
 *    instead of a heap sift.
 *  - nextBatch() drains a maximal run of same-timestamp events in one
 *    call so the owner can dispatch the whole run in one switch pass
 *    without re-entering the queue's bookkeeping per event. Because
 *    consumed records stay in the bucket, the common-case batch is a
 *    zero-copy span over the sorted bucket itself.
 *
 * LegacyEventQueue (legacy_event_queue.hpp) is the pre-refactor binary
 * heap kept for differential tests and the perf trajectory.
 */

#ifndef ERMS_SIM_EVENT_QUEUE_HPP
#define ERMS_SIM_EVENT_QUEUE_HPP

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace erms {

/** Record type tag reserved for pooled std::function callbacks. */
inline constexpr std::uint32_t kCallbackEvent = 0;

/**
 * One scheduled event. POD: owners define their own type tags (> 0) and
 * payload conventions; the queue only reads/stamps time and seq.
 *
 * Packed to 48 bytes (b narrowed to 32 bits, which covers every id the
 * simulator routes through it): the record is copied on post and moved
 * during bucket sorts, so its size is hot-loop memory traffic.
 */
struct EventRecord
{
    SimTime time = 0;       ///< absolute dispatch time (stamped by post)
    std::uint64_t seq = 0;  ///< insertion order (stamped by post)
    std::uint64_t a = 0;    ///< payload word
    void *p1 = nullptr;     ///< payload pointer
    void *p2 = nullptr;     ///< payload pointer
    std::uint32_t b = 0;    ///< payload word (ids are 32-bit)
    std::uint32_t type = kCallbackEvent;
};

static_assert(sizeof(EventRecord) == 48, "EventRecord is hot-loop "
                                         "memory traffic; keep it packed");

/**
 * A run of ready events handed out by nextBatch(). Usually a zero-copy
 * window into the queue's sorted active bucket; the span is valid until
 * the next nextBatch()/next() call. Posting new events while a batch is
 * live is safe and does not invalidate it (same-bucket posts are
 * diverted to the spill heap, never appended to the sorted bucket).
 *
 * A batch may cover several timestamps, so the owner must call
 * advanceTo(record.time) before dispatching each record, and after each
 * dispatch ask interleavePending(next) whether a freshly posted event
 * must run before the batch's next record — if so, hand the unconsumed
 * tail back with returnTail() and re-enter nextBatch().
 */
struct EventBatch
{
    const EventRecord *data = nullptr;
    std::size_t count = 0;

    const EventRecord *begin() const { return data; }
    const EventRecord *end() const { return data + count; }
};

/**
 * Two-level calendar queue of EventRecords, dispatching in exactly
 * (time, seq) ascending order.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /**
     * @param bucket_count  number of wheel buckets (power of two).
     * @param bucket_width  time span of one bucket in microseconds
     *                      (power of two). The wheel window covers
     *                      bucket_count * bucket_width microseconds.
     */
    explicit EventQueue(std::size_t bucket_count = 2048,
                        SimTime bucket_width = 32);

    /** Schedule a typed record at absolute simulated time t (>= now).
     *  rec.time and rec.seq are overwritten by the queue. */
    void post(SimTime t, EventRecord rec);

    /** Schedule a typed record delay microseconds from now. */
    void postAfter(SimTime delay, EventRecord rec);

    /** Schedule a callback at absolute simulated time t (>= now). The
     *  callable is parked in a recycled slot; the event itself is a
     *  kCallbackEvent record. */
    void schedule(SimTime t, Callback cb);

    /** Schedule a callback delay microseconds from now. */
    void scheduleAfter(SimTime delay, Callback cb);

    /** Current simulated time (time of the last dispatched event). */
    SimTime now() const { return now_; }

    bool empty() const { return pending_ == 0; }
    std::size_t pending() const { return pending_; }

    /**
     * Pop the next event if its time is <= horizon (inclusive — an
     * event posted exactly at the horizon during dispatch is still
     * eligible). On success advances now() to the event time and
     * returns true. Otherwise leaves the event queued, advances now()
     * to the horizon, and returns false.
     */
    bool next(SimTime horizon, EventRecord &out);

    /**
     * Take a run of ready events with times <= horizon (inclusive) as
     * a span in exact (time, seq) order. In the common case the span
     * is a zero-copy window over the sorted active bucket's whole
     * unconsumed suffix (possibly many timestamps); with a live spill
     * heap or early-heap events the run is the single earliest
     * timestamp, merged into an internal scratch buffer. Either way
     * the span stays valid until the next nextBatch()/next() call —
     * posting during dispatch cannot touch it. The owner drives
     * per-record time with advanceTo() and must honour
     * interleavePending()/returnTail() between records (see
     * EventBatch). On success advances now() to the first record's
     * time and returns true; otherwise leaves events queued, advances
     * now() to the horizon, and returns false with `out` empty.
     */
    bool nextBatch(SimTime horizon, EventBatch &out);

    /** Advance now() to t (the next batch record's time). Must be
     *  monotone; only valid for times handed out by nextBatch(). */
    void advanceTo(SimTime t) { now_ = t; }

    /**
     * After dispatching one batch record: must a freshly posted event
     * run before `next` (the batch's next record)? Only the spill heap
     * can hold such an event — dispatch-time posts have t >= now(), so
     * they cannot reach the early heap or an earlier bucket — and it
     * interleaves only with a strictly smaller time (an equal-time
     * post carries a higher seq and runs after the whole batch run of
     * that timestamp).
     */
    bool
    interleavePending(const EventRecord &next) const
    {
        return !spill_.empty() && spill_.front().time < next.time;
    }

    /**
     * Hand the unconsumed tail of the current zero-copy batch back to
     * the queue (records stay in place in the sorted bucket; this just
     * rewinds the consumption bookkeeping). Only meaningful after
     * interleavePending() returned true; scratch-merged batches never
     * trigger it (they are single-timestamp).
     */
    void
    returnTail(std::size_t count)
    {
        activeHead_ -= count;
        pending_ += count;
        wheelCount_ += count;
    }

    /** Invoke and recycle a kCallbackEvent record returned by next().
     *  The slot is released before the callable runs, so a callback may
     *  schedule further callbacks (and reuse its own slot) safely. */
    void runCallback(const EventRecord &rec);

    /**
     * Dispatch events in order until the queue drains or the next event
     * is later than horizon. Events scheduled while running are
     * dispatched too if they fall within the horizon (inclusive). Only
     * valid for queues holding callback events; typed records trip an
     * assertion (their owner must drive next() itself). On return
     * now() == max(now, horizon).
     * @return number of events dispatched.
     */
    std::uint64_t runUntil(SimTime horizon);

    /** Dispatch everything (no horizon; now() ends at the last event). */
    std::uint64_t runAll();

    /** Callback slots ever allocated (recycle observability: stays flat
     *  when schedule/dispatch cycles reuse slots). */
    std::size_t callbackPoolSize() const { return slots_.size(); }

  private:
    struct Later
    {
        bool
        operator()(const EventRecord &a, const EventRecord &b) const
        {
            if (a.time != b.time)
                return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    struct Earlier
    {
        bool
        operator()(const EventRecord &a, const EventRecord &b) const
        {
            if (a.time != b.time)
                return a.time < b.time;
            return a.seq < b.seq;
        }
    };

    /** Find the next event without popping: returns false when empty,
     *  else sets t to its time and leaves it at a known position
     *  (early_ front, the sorted cursor bucket's head, or the spill
     *  heap's front). */
    bool peekTime(SimTime &t);

    /** Pop the event found by the immediately preceding peekTime(). */
    EventRecord popTop();

    /** Move far-list events that now fall inside the window into their
     *  buckets; recompute farMin_. */
    void pourFar();

    // calendar wheel ----------------------------------------------------
    std::vector<std::vector<EventRecord>> buckets_;
    std::size_t bucketCount_;
    SimTime bucketWidth_;
    SimTime span_;          ///< bucketCount_ * bucketWidth_
    SimTime windowStart_ = 0;
    std::size_t cursor_ = 0;
    /** Current bucket sorted ascending; consumed entries are the
     *  prefix [0, activeHead_), discarded in one clear() when the
     *  bucket drains. Leaving consumed records in place is what makes
     *  zero-copy batch spans possible. */
    bool activeSorted_ = false;
    /** First unconsumed entry of the current bucket. Nonzero only for
     *  buckets_[cursor_], and only while activeSorted_. */
    std::size_t activeHead_ = 0;
    std::size_t wheelCount_ = 0; ///< records currently in buckets/spill

    /** Merge buffer for nextBatch() runs that interleave spill/early
     *  records (the zero-copy bucket window doesn't apply there). */
    std::vector<EventRecord> scratchBatch_;

    /** Events posted into the current bucket after it was sorted; a
     *  min-heap on (time, seq) interleaved with the sorted bucket. Every
     *  spill entry carries a higher seq than every sorted entry, so
     *  equal-time ties always drain the sorted tail first — exactly
     *  the order a single heap would produce. */
    std::vector<EventRecord> spill_;

    // overflow levels ---------------------------------------------------
    std::vector<EventRecord> far_;   ///< time >= windowStart_ + span_
    SimTime farMin_ = 0;
    std::vector<EventRecord> early_; ///< heap; time < windowStart_

    // callback slot pool ------------------------------------------------
    std::vector<Callback> slots_;
    std::vector<std::uint32_t> freeSlots_;

    std::size_t pending_ = 0;
    SimTime now_ = 0;
    std::uint64_t next_seq_ = 0;
};

// ---------------------------------------------------------------------
// Hot path, defined inline: post/peek/pop run once (or more) per
// simulated event, and the simulator's drain loop lives in another
// translation unit — without these in the header every event pays
// several opaque call boundaries. Cold paths (construction, callback
// slots, pourFar) stay in event_queue.cpp.
// ---------------------------------------------------------------------

inline void
EventQueue::post(SimTime t, EventRecord rec)
{
    ERMS_ASSERT_MSG(t >= now_, "cannot schedule into the past");
    rec.time = t;
    rec.seq = next_seq_++;
    ++pending_;

    if (t < windowStart_) {
        // The wheel advanced past t while hunting for a later event
        // (e.g. the sim idled to a horizon, then scheduled from there).
        // Rare by construction: park in the early heap, which always
        // dispatches before the wheel (early times < windowStart_ <=
        // every wheel/far time).
        early_.push_back(rec);
        std::push_heap(early_.begin(), early_.end(), Later{});
        return;
    }
    if (t - windowStart_ >= span_) {
        if (far_.empty() || t < farMin_)
            farMin_ = t;
        far_.push_back(rec);
        return;
    }
    const std::size_t index =
        static_cast<std::size_t>((t - windowStart_) / bucketWidth_);
    if (index < cursor_) {
        // Buckets before the cursor are empty (the cursor only advances
        // past drained buckets), so reopening is just a rewind. Drop
        // the current bucket's consumed prefix and fold any spill back
        // into it; it re-sorts as one unit when it becomes current
        // again.
        std::vector<EventRecord> &active = buckets_[cursor_];
        if (activeHead_ > 0) {
            active.erase(active.begin(),
                         active.begin() +
                             static_cast<std::ptrdiff_t>(activeHead_));
            activeHead_ = 0;
        }
        if (!spill_.empty()) {
            active.insert(active.end(), spill_.begin(), spill_.end());
            spill_.clear();
        }
        cursor_ = index;
        activeSorted_ = false;
    }
    if (index == cursor_ && activeSorted_) {
        spill_.push_back(rec);
        std::push_heap(spill_.begin(), spill_.end(), Later{});
    } else {
        buckets_[index].push_back(rec);
    }
    ++wheelCount_;
}

inline void
EventQueue::postAfter(SimTime delay, EventRecord rec)
{
    post(now_ + delay, rec);
}

inline bool
EventQueue::peekTime(SimTime &t)
{
    if (!early_.empty()) {
        t = early_.front().time;
        return true;
    }
    if (pending_ == 0)
        return false;
    for (;;) {
        std::vector<EventRecord> &bucket = buckets_[cursor_];
        if (activeHead_ == bucket.size() && spill_.empty()) {
            // Bucket fully consumed (or plain empty): discard the stale
            // prefix in one shot, then advance. The clear must happen
            // before any cursor move or window jump so a later pour
            // into this bucket can't resurrect consumed records.
            bucket.clear();
            activeHead_ = 0;
            activeSorted_ = false;
            if (wheelCount_ == 0) {
                // Everything pending lives in the far list: jump the
                // window straight to it instead of walking empty
                // rotations.
                windowStart_ = farMin_ - farMin_ % span_;
                cursor_ = 0;
                pourFar(); // farMin_ lands inside the new window
                continue;
            }
            ++cursor_;
            if (cursor_ == bucketCount_) {
                windowStart_ += span_;
                cursor_ = 0;
                if (!far_.empty())
                    pourFar();
            }
            continue;
        }
        if (!activeSorted_) {
            // Sort ascending; consumption walks activeHead_ forward.
            // The spill heap is necessarily empty here (it only fills
            // after the sort and drains before the cursor moves on),
            // and activeHead_ is 0 (nonzero only while sorted).
            std::sort(bucket.begin(), bucket.end(), Earlier{});
            activeSorted_ = true;
        }
        if (spill_.empty())
            t = bucket[activeHead_].time;
        else if (activeHead_ == bucket.size())
            t = spill_.front().time;
        else
            t = std::min(bucket[activeHead_].time, spill_.front().time);
        return true;
    }
}

inline EventRecord
EventQueue::popTop()
{
    --pending_;
    if (!early_.empty()) {
        std::pop_heap(early_.begin(), early_.end(), Later{});
        const EventRecord rec = early_.back();
        early_.pop_back();
        return rec;
    }
    std::vector<EventRecord> &bucket = buckets_[cursor_];
    --wheelCount_;
    // Equal-time ties take the sorted bucket first: every spill entry
    // was posted after the sort, so its seq is higher than any sorted
    // entry's — exactly the single-heap order.
    if (!spill_.empty() &&
        (activeHead_ == bucket.size() ||
         Later{}(bucket[activeHead_], spill_.front()))) {
        std::pop_heap(spill_.begin(), spill_.end(), Later{});
        const EventRecord rec = spill_.back();
        spill_.pop_back();
        return rec;
    }
    return bucket[activeHead_++];
}

inline bool
EventQueue::next(SimTime horizon, EventRecord &out)
{
    SimTime t;
    if (!peekTime(t) || t > horizon) {
        if (now_ < horizon)
            now_ = horizon;
        return false;
    }
    out = popTop();
    now_ = t;
    return true;
}

inline bool
EventQueue::nextBatch(SimTime horizon, EventBatch &out)
{
    SimTime t;
    if (!peekTime(t) || t > horizon) {
        if (now_ < horizon)
            now_ = horizon;
        out = EventBatch{};
        return false;
    }
    now_ = t;
    // peekTime() left the run's records at known positions, and no new
    // records can arrive while we drain (dispatch happens after this
    // returns), so the tail of the run is found with cheap time checks
    // per event instead of re-running the peek loop.
    if (!early_.empty()) {
        // Early-heap run: wheel times are >= windowStart_ > t, so every
        // same-time record lives in the early heap alone. Merged into
        // scratch (rare by construction).
        scratchBatch_.clear();
        do {
            --pending_;
            std::pop_heap(early_.begin(), early_.end(), Later{});
            scratchBatch_.push_back(early_.back());
            early_.pop_back();
        } while (!early_.empty() && early_.front().time == t);
        out.data = scratchBatch_.data();
        out.count = scratchBatch_.size();
        return true;
    }
    // Wheel run: time t maps to exactly one bucket, so every same-time
    // record is in the current (sorted) bucket or its spill heap.
    std::vector<EventRecord> &bucket = buckets_[cursor_];
    if (spill_.empty()) {
        // Common case: hand out the bucket's whole unconsumed suffix
        // up to the horizon, zero-copy — multiple timestamps in one
        // span. Posts during dispatch go to the spill heap (the bucket
        // is sorted), so the span survives until the next nextBatch()
        // call; the owner's interleavePending() check decides when a
        // spilled event forces an early re-entry.
        std::size_t end = activeHead_ + 1;
        while (end < bucket.size() && bucket[end].time <= horizon)
            ++end;
        const std::size_t n = end - activeHead_;
        pending_ -= n;
        wheelCount_ -= n;
        out.data = bucket.data() + activeHead_;
        out.count = n;
        activeHead_ = end;
        return true;
    }
    // Spill records interleave with the sorted window: merge the run
    // into scratch. Equal-time ties drain the bucket first (spill seqs
    // are strictly higher).
    scratchBatch_.clear();
    for (;;) {
        --pending_;
        --wheelCount_;
        if (!spill_.empty() &&
            (activeHead_ == bucket.size() ||
             Later{}(bucket[activeHead_], spill_.front()))) {
            std::pop_heap(spill_.begin(), spill_.end(), Later{});
            scratchBatch_.push_back(spill_.back());
            spill_.pop_back();
        } else {
            scratchBatch_.push_back(bucket[activeHead_++]);
        }
        const bool more = (activeHead_ < bucket.size() &&
                           bucket[activeHead_].time == t) ||
                          (!spill_.empty() && spill_.front().time == t);
        if (!more)
            break;
    }
    out.data = scratchBatch_.data();
    out.count = scratchBatch_.size();
    return true;
}

} // namespace erms

#endif // ERMS_SIM_EVENT_QUEUE_HPP
