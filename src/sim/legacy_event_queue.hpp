/**
 * @file
 * The original binary-heap event engine: a priority queue of
 * (time, insertion-seq) tagged std::function callbacks. Kept as the
 * reference implementation so that
 *  - the perf trajectory (BENCH_event_engine.json, scripts/bench_perf.sh)
 *    can measure the calendar engine against the pre-refactor baseline
 *    inside one binary, and
 *  - the differential determinism tests can run the same scenario
 *    through both engines (ERMS_EVENT_ENGINE=legacy) and byte-compare.
 *
 * Dispatch order is the exact total order (time, seq) ascending — the
 * same contract the calendar engine in event_queue.hpp preserves.
 */

#ifndef ERMS_SIM_LEGACY_EVENT_QUEUE_HPP
#define ERMS_SIM_LEGACY_EVENT_QUEUE_HPP

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hpp"

namespace erms {

/** Binary heap of (time, insertion-order) tagged callbacks. */
class LegacyEventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule a callback at absolute simulated time t (>= now). */
    void schedule(SimTime t, Callback cb);

    /** Schedule a callback delay microseconds from now. */
    void scheduleAfter(SimTime delay, Callback cb);

    /** Current simulated time (time of the last dispatched event). */
    SimTime now() const { return now_; }

    bool empty() const { return events_.empty(); }
    std::size_t pending() const { return events_.size(); }

    /**
     * Dispatch events in order until the queue drains or the next event
     * is later than horizon. Events scheduled while running are
     * dispatched too if they fall within the horizon (inclusive: an
     * event scheduled exactly at the horizon during dispatch fires in
     * the same call). On return now() == max(now, horizon).
     *
     * When stop is non-null it is checked after every callback: if a
     * callback sets *stop, dispatch halts immediately and now() stays
     * at the last dispatched event's time (no bump to the horizon), so
     * a later call resumes the identical (time, seq) order. Used by
     * the sharded coordinator's minute-lockstep stepping (src/shard).
     * @return number of events dispatched.
     */
    std::uint64_t runUntil(SimTime horizon, const bool *stop = nullptr);

    /** Dispatch everything (no horizon). */
    std::uint64_t runAll();

    /**
     * Dispatch at most max_events in (time, seq) order, no horizon.
     * Exists so benchmarks can drive both engines through *identical*
     * event sets: runUntil's windowed horizon overshoots a target count
     * by however many events share the final window.
     * @return number of events dispatched (< max_events iff drained).
     */
    std::uint64_t runCount(std::uint64_t max_events);

  private:
    struct Event
    {
        SimTime time;
        std::uint64_t seq;
        Callback cb;
    };
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.time != b.time)
                return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events_;
    SimTime now_ = 0;
    std::uint64_t next_seq_ = 0;
};

} // namespace erms

#endif // ERMS_SIM_LEGACY_EVENT_QUEUE_HPP
