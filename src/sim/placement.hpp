/**
 * @file
 * Placement interface between the simulator and provisioning policies.
 * The simulator exposes a read-only view of host load; policies pick the
 * host for each new container and which container to evict on scale-in.
 */

#ifndef ERMS_SIM_PLACEMENT_HPP
#define ERMS_SIM_PLACEMENT_HPP

#include <vector>

#include "common/types.hpp"

namespace erms {

/** Snapshot of one host's load as seen by a placement policy. */
struct HostView
{
    HostId id = kInvalidHost;
    double cpuCapacityCores = 32.0;
    double memCapacityMb = 64.0 * 1024.0;
    /** Sum of CPU requests of containers currently placed here. */
    double cpuAllocatedCores = 0.0;
    /** Sum of memory requests of containers currently placed here. */
    double memAllocatedMb = 0.0;
    /** Background (batch / iBench) load, fraction of capacity. */
    double backgroundCpuUtil = 0.0;
    double backgroundMemUtil = 0.0;
    /** Recent measured utilization including background (fractions). */
    double cpuUtil = 0.0;
    double memUtil = 0.0;
};

/** Chooses hosts for container placement and eviction. */
class PlacementPolicy
{
  public:
    virtual ~PlacementPolicy() = default;

    /**
     * Pick the host for one new container with the given resource
     * request. Must return a valid index into hosts.
     */
    virtual std::size_t placeContainer(const std::vector<HostView> &hosts,
                                       double cpu_request_cores,
                                       double mem_request_mb) = 0;

    /**
     * Pick which of the candidate hosts (each currently running one
     * removable container of the microservice being scaled in) should
     * lose a container. Must return a valid index into candidates.
     */
    virtual std::size_t
    evictContainer(const std::vector<HostView> &hosts,
                   const std::vector<std::size_t> &candidates,
                   double cpu_request_cores, double mem_request_mb) = 0;
};

/**
 * Kubernetes-default-like policy: place on the host with the most free
 * CPU (spread by least allocation), evict from the most loaded host.
 * Interference-unaware — the Fig. 15 baseline.
 */
class SpreadPlacementPolicy : public PlacementPolicy
{
  public:
    std::size_t placeContainer(const std::vector<HostView> &hosts,
                               double cpu_request_cores,
                               double mem_request_mb) override;
    std::size_t evictContainer(const std::vector<HostView> &hosts,
                               const std::vector<std::size_t> &candidates,
                               double cpu_request_cores,
                               double mem_request_mb) override;
};

} // namespace erms

#endif // ERMS_SIM_PLACEMENT_HPP
