#include "stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "error.hpp"

namespace erms {

void
StreamingStats::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
StreamingStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    // Floating-point cancellation in the Welford/Chan updates can leave
    // m2_ a tiny negative value (or -0.0) for near-constant streams;
    // clamp so variance is never negative and stddev never NaN.
    return std::max(0.0, m2_) / static_cast<double>(n_ - 1);
}

double
StreamingStats::stddev() const
{
    return std::sqrt(variance());
}

void
StreamingStats::merge(const StreamingStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
SampleSet::add(double x)
{
    samples_.push_back(x);
    sorted_ = false;
}

void
SampleSet::addAll(const std::vector<double> &xs)
{
    samples_.insert(samples_.end(), xs.begin(), xs.end());
    sorted_ = false;
}

void
SampleSet::ensureSorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
SampleSet::quantile(double q) const
{
    ERMS_ASSERT(q >= 0.0 && q <= 1.0);
    if (samples_.empty())
        return 0.0;
    if (samples_.size() == 1)
        return samples_[0];
    const double pos = q * static_cast<double>(samples_.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    double vlo, vhi;
    if (!sorted_ && samples_.size() >= kSelectThreshold) {
        // One O(n) selection instead of an O(n log n) sort: the
        // simulator's minute boundary queries a single quantile over a
        // minute's worth of samples (millions at benchmark load), and
        // full sorting there dominated the whole minute's bookkeeping.
        // nth_element yields the exact lo-th order statistic, and the
        // (lo+1)-th is the minimum of the upper partition, so the
        // interpolated value is bit-identical to the sorted path.
        std::nth_element(samples_.begin(),
                         samples_.begin() + static_cast<std::ptrdiff_t>(lo),
                         samples_.end());
        vlo = samples_[lo];
        vhi = hi == lo ? vlo
                       : *std::min_element(samples_.begin() +
                                               static_cast<std::ptrdiff_t>(lo + 1),
                                           samples_.end());
    } else {
        ensureSorted();
        vlo = samples_[lo];
        vhi = samples_[hi];
    }
    return vlo * (1.0 - frac) + vhi * frac;
}

double
SampleSet::mean() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : samples_)
        sum += x;
    return sum / static_cast<double>(samples_.size());
}

double
SampleSet::min() const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    return samples_.front();
}

double
SampleSet::max() const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    return samples_.back();
}

double
SampleSet::fractionAbove(double threshold) const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    const auto it =
        std::upper_bound(samples_.begin(), samples_.end(), threshold);
    const auto above = static_cast<double>(samples_.end() - it);
    return above / static_cast<double>(samples_.size());
}

std::vector<double>
SampleSet::cdfAt(const std::vector<double> &points) const
{
    std::vector<double> out(points.size(), 0.0);
    if (samples_.empty())
        return out;
    ensureSorted();
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto it =
            std::upper_bound(samples_.begin(), samples_.end(), points[i]);
        out[i] = static_cast<double>(it - samples_.begin()) /
                 static_cast<double>(samples_.size());
    }
    return out;
}

std::vector<std::pair<double, double>>
SampleSet::cdfSeries() const
{
    std::vector<std::pair<double, double>> series;
    if (samples_.empty())
        return series;
    ensureSorted();
    const double n = static_cast<double>(samples_.size());
    for (std::size_t i = 0; i < samples_.size(); ++i) {
        const bool last_of_value =
            i + 1 == samples_.size() || samples_[i + 1] != samples_[i];
        if (last_of_value)
            series.emplace_back(samples_[i],
                                static_cast<double>(i + 1) / n);
    }
    return series;
}

void
SampleSet::clear()
{
    samples_.clear();
    sorted_ = true;
}

const SampleSet WindowedSamples::kEmpty;

void
WindowedSamples::add(std::uint64_t window, double x)
{
    for (auto &entry : windows_) {
        if (entry.first == window) {
            entry.second.add(x);
            return;
        }
    }
    windows_.emplace_back(window, SampleSet{});
    windows_.back().second.add(x);
}

std::vector<std::uint64_t>
WindowedSamples::windowIndices() const
{
    std::vector<std::uint64_t> indices;
    indices.reserve(windows_.size());
    for (const auto &entry : windows_)
        indices.push_back(entry.first);
    std::sort(indices.begin(), indices.end());
    return indices;
}

const SampleSet &
WindowedSamples::window(std::uint64_t index) const
{
    for (const auto &entry : windows_) {
        if (entry.first == index)
            return entry.second;
    }
    return kEmpty;
}

double
pearsonCorrelation(const std::vector<double> &x, const std::vector<double> &y)
{
    if (x.size() != y.size() || x.size() < 2)
        return 0.0;
    const double n = static_cast<double>(x.size());
    double sx = 0.0, sy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        sx += x[i];
        sy += y[i];
    }
    const double mx = sx / n;
    const double my = sy / n;
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double dx = x[i] - mx;
        const double dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx <= 0.0 || syy <= 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

} // namespace erms
