#include "rng.hpp"

#include <cmath>
#include <numbers>

#include "error.hpp"

namespace erms {
namespace {

/** SplitMix64 step, used for seeding and stream splitting. */
std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
deriveRunSeed(std::uint64_t base_seed, std::uint64_t run_index)
{
    // SplitMix64 state after run_index + 1 increments, in closed form
    // (the state advances by a fixed odd constant per draw), then one
    // output scramble. Equivalent to calling splitMix64 run_index + 1
    // times on a state initialized to base_seed.
    std::uint64_t state =
        base_seed + (run_index + 1) * 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xa0761d6478bd642fULL);
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    ERMS_ASSERT(lo <= hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(next());
    return lo + static_cast<std::int64_t>(next() % span);
}

double
Rng::exponential(double mean)
{
    ERMS_ASSERT(mean > 0.0);
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

double
Rng::normal()
{
    if (hasSpareNormal_) {
        hasSpareNormal_ = false;
        return spareNormal_;
    }
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    spareNormal_ = r * std::sin(theta);
    hasSpareNormal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::logNormalMeanCv(double mean, double cv)
{
    ERMS_ASSERT(mean > 0.0 && cv >= 0.0);
    if (cv == 0.0)
        return mean;
    const double sigma2 = std::log(1.0 + cv * cv);
    const double mu = std::log(mean) - 0.5 * sigma2;
    return std::exp(mu + std::sqrt(sigma2) * normal());
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

std::uint64_t
Rng::poisson(double mean)
{
    ERMS_ASSERT(mean >= 0.0);
    if (mean == 0.0)
        return 0;
    if (mean < 30.0) {
        const double limit = std::exp(-mean);
        double prod = uniform();
        std::uint64_t n = 0;
        while (prod > limit) {
            prod *= uniform();
            ++n;
        }
        return n;
    }
    // Normal approximation with continuity correction for large means.
    const double draw = normal(mean, std::sqrt(mean));
    return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

std::uint64_t
Rng::zipf(std::uint64_t n, double s)
{
    ERMS_ASSERT(n >= 1);
    if (n == 1)
        return 1;
    if (s <= 1.0) {
        // Rejection sampling needs s > 1; fall back to explicit weights.
        std::vector<double> weights(n);
        for (std::uint64_t k = 1; k <= n; ++k)
            weights[k - 1] = std::pow(static_cast<double>(k), -s);
        return static_cast<std::uint64_t>(weightedIndex(weights)) + 1;
    }
    // Inverse-CDF via rejection (Devroye). Good enough for workload synth.
    const double b = std::pow(2.0, s - 1.0);
    while (true) {
        const double u = uniform();
        const double v = uniform();
        const double x = std::floor(std::pow(u, -1.0 / (s - 1.0)));
        if (x < 1.0 || x > static_cast<double>(n))
            continue;
        const double t = std::pow(1.0 + 1.0 / x, s - 1.0);
        if (v * x * (t - 1.0) / (b - 1.0) <= t / b)
            return static_cast<std::uint64_t>(x);
    }
}

std::size_t
Rng::weightedIndex(const std::vector<double> &weights)
{
    ERMS_ASSERT(!weights.empty());
    double total = 0.0;
    for (double w : weights) {
        ERMS_ASSERT(w >= 0.0);
        total += w;
    }
    ERMS_ASSERT(total > 0.0);
    double draw = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        draw -= weights[i];
        if (draw <= 0.0)
            return i;
    }
    return weights.size() - 1;
}

} // namespace erms
