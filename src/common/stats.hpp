/**
 * @file
 * Statistics accumulators used across the simulator, profiler and
 * benchmark harnesses: streaming mean/variance, exact percentile
 * estimation over stored samples, windowed (per-minute) aggregation, and
 * empirical CDF extraction for the paper's distribution figures.
 */

#ifndef ERMS_COMMON_STATS_HPP
#define ERMS_COMMON_STATS_HPP

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace erms {

/**
 * Streaming first/second moment accumulator (Welford). Constant memory;
 * used where only mean/variance are needed (e.g. Rhythm's contribution
 * statistics).
 */
class StreamingStats
{
  public:
    void add(double x);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }

    /**
     * Sample (unbiased, n-1 denominator) variance; 0 when fewer than
     * two samples. The sample convention matches merge(), which
     * implements Chan's combination of the centered second moments, and
     * matches the callers (profiling fits, Rhythm's contribution
     * statistics) that treat these accumulators as estimates from a
     * finite observation window rather than a full population.
     * Clamped at zero: cancellation can drive the accumulated second
     * moment slightly negative for near-constant streams, which would
     * otherwise surface as a negative variance and a NaN stddev.
     */
    double variance() const;

    /** Standard deviation derived from variance(). */
    double stddev() const;

    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }

    /** Merge another accumulator into this one (parallel aggregation). */
    void merge(const StreamingStats &other);

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Exact sample store with percentile queries. Samples are buffered and
 * sorted lazily on the first quantile query after an insert.
 */
class SampleSet
{
  public:
    void add(double x);
    void addAll(const std::vector<double> &xs);

    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    /**
     * Quantile in [0, 1] using linear interpolation between order
     * statistics. quantile(0.95) is the paper's P95.
     *
     * Large unsorted sets answer via an O(n) selection pass rather
     * than a full sort; the value is bit-identical either way, but the
     * buffer may be left partially reordered (see samples()).
     */
    double quantile(double q) const;

    /** Convenience alias for the paper's tail metrics. */
    double p50() const { return quantile(0.50); }
    double p95() const { return quantile(0.95); }
    double p99() const { return quantile(0.99); }

    double mean() const;
    double min() const;
    double max() const;

    /** Fraction of samples strictly greater than the threshold. */
    double fractionAbove(double threshold) const;

    /**
     * Empirical CDF evaluated at the given points:
     * result[i] = P(X <= points[i]).
     */
    std::vector<double> cdfAt(const std::vector<double> &points) const;

    /**
     * (value, cumulative probability) pairs over all distinct sorted
     * samples — the series plotted in the paper's CDF figures.
     */
    std::vector<std::pair<double, double>> cdfSeries() const;

    /** Raw sample buffer. Order is unspecified once any query has run
     *  (queries may sort or partially reorder the buffer in place);
     *  only the multiset of values is stable. */
    const std::vector<double> &samples() const { return samples_; }
    void clear();

  private:
    /** Below this size a quantile query just sorts: repeated queries
     *  on small (controller/test-sized) sets then hit the sorted fast
     *  path instead of re-selecting each time. */
    static constexpr std::size_t kSelectThreshold = 4096;

    void ensureSorted() const;

    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/**
 * Time-windowed sample aggregation keyed by an integral window index
 * (the paper aggregates per minute: latency samples and per-container
 * call counts within the jth minute form one profiling data point).
 */
class WindowedSamples
{
  public:
    /** Add a sample into the window with the given index. */
    void add(std::uint64_t window, double x);

    /** Number of distinct windows with at least one sample. */
    std::size_t windowCount() const { return windows_.size(); }

    /** Sorted list of window indices present. */
    std::vector<std::uint64_t> windowIndices() const;

    /** Sample set of one window; empty set if absent. */
    const SampleSet &window(std::uint64_t index) const;

  private:
    std::vector<std::pair<std::uint64_t, SampleSet>> windows_;
    static const SampleSet kEmpty;
};

/** Pearson correlation coefficient; 0 when undefined. */
double pearsonCorrelation(const std::vector<double> &x,
                          const std::vector<double> &y);

} // namespace erms

#endif // ERMS_COMMON_STATS_HPP
