/**
 * @file
 * Fundamental identifier and time types shared by every Erms module.
 */

#ifndef ERMS_COMMON_TYPES_HPP
#define ERMS_COMMON_TYPES_HPP

#include <cstdint>
#include <limits>
#include <string>

namespace erms {

/** Identifier of a microservice within an application catalog. */
using MicroserviceId = std::uint32_t;

/** Identifier of an online service (an entry point with its own SLA). */
using ServiceId = std::uint32_t;

/** Identifier of a deployed container instance. */
using ContainerId = std::uint32_t;

/** Identifier of a physical host in the cluster. */
using HostId = std::uint32_t;

/** Identifier of a user request flowing through a dependency graph. */
using RequestId = std::uint64_t;

/** Sentinel for "no microservice". */
inline constexpr MicroserviceId kInvalidMicroservice =
    std::numeric_limits<MicroserviceId>::max();

/** Sentinel for "no service". */
inline constexpr ServiceId kInvalidService =
    std::numeric_limits<ServiceId>::max();

/** Sentinel for "no host". */
inline constexpr HostId kInvalidHost = std::numeric_limits<HostId>::max();

/**
 * Simulated time in microseconds. The discrete-event simulator orders
 * events on integral ticks so that event ordering never suffers from
 * floating-point drift.
 */
using SimTime = std::uint64_t;

/** Milliseconds as a double, the unit used by the analytic models. */
using Millis = double;

/** Convert simulator microseconds to model milliseconds. */
constexpr Millis
toMillis(SimTime t)
{
    return static_cast<Millis>(t) / 1000.0;
}

/** Convert model milliseconds to simulator microseconds (non-negative). */
constexpr SimTime
toSimTime(Millis ms)
{
    return ms <= 0.0 ? 0 : static_cast<SimTime>(ms * 1000.0 + 0.5);
}

/**
 * Workload expressed as requests per minute, the unit used throughout the
 * paper ("requests/minute"). Models internally convert to per-millisecond
 * rates where needed.
 */
using RequestsPerMinute = double;

} // namespace erms

#endif // ERMS_COMMON_TYPES_HPP
