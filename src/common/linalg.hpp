/**
 * @file
 * Small dense linear-algebra helpers: ordinary least squares via normal
 * equations with Gaussian elimination. Sized for the profiler's tiny
 * feature sets (<= 8 features), not for general numerical work.
 */

#ifndef ERMS_COMMON_LINALG_HPP
#define ERMS_COMMON_LINALG_HPP

#include <vector>

namespace erms {

/**
 * Solve the linear system A x = b for square A (row-major, n x n) with
 * partial pivoting. Returns an empty vector when A is singular.
 */
std::vector<double> solveLinearSystem(std::vector<double> a,
                                      std::vector<double> b);

/**
 * Ordinary least squares: find w minimizing ||X w - y||^2 with ridge
 * damping lambda for numerical stability. X is row-major with
 * rows = y.size() and cols = w.size().
 */
std::vector<double> leastSquares(const std::vector<double> &x,
                                 const std::vector<double> &y,
                                 std::size_t cols, double lambda = 1e-9);

/** Sum of squared residuals of a fitted linear model. */
double residualSumOfSquares(const std::vector<double> &x,
                            const std::vector<double> &y, std::size_t cols,
                            const std::vector<double> &w);

} // namespace erms

#endif // ERMS_COMMON_LINALG_HPP
