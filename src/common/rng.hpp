/**
 * @file
 * Deterministic random number generation for simulation and workload
 * synthesis. A thin wrapper over xoshiro256** with convenience draws for
 * the distributions Erms needs (exponential inter-arrivals, log-normal
 * service times, Zipf-like sharing degrees).
 */

#ifndef ERMS_COMMON_RNG_HPP
#define ERMS_COMMON_RNG_HPP

#include <cmath>
#include <cstdint>
#include <vector>

namespace erms {

/**
 * Deterministic per-run seed derivation for experiment fan-out: the
 * run_index-th output of a SplitMix64 stream seeded with base_seed
 * (computed in closed form, O(1)). Runs of one sweep get decorrelated
 * seeds while the (base_seed, run_index) -> seed mapping stays stable
 * across serial and parallel execution orders, so a sweep replays
 * byte-identically regardless of how its runs are scheduled.
 */
std::uint64_t deriveRunSeed(std::uint64_t base_seed,
                            std::uint64_t run_index);

/**
 * Deterministic, splittable random number generator.
 *
 * Every stochastic component takes an explicit Rng (or a seed) so whole
 * experiments replay bit-identically; there is no global generator.
 */
class Rng
{
  public:
    /** Seed via SplitMix64 expansion so nearby seeds decorrelate. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit draw. */
    std::uint64_t next();

    /** Derive an independent child stream (for per-entity generators). */
    Rng split();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Exponential with the given mean (mean > 0). */
    double exponential(double mean);

    /** Standard normal via Box-Muller. */
    double normal();

    /** Normal with mean/stddev. */
    double normal(double mean, double stddev);

    /** Log-normal parameterized by the mean and coefficient of variation
     *  of the *resulting* distribution (not of the underlying normal). */
    double logNormalMeanCv(double mean, double cv);

    /** Log-normal fast path for callers that draw repeatedly with a
     *  fixed cv: sigma and half_sigma2 = sigma^2/2 are precomputed once
     *  (sigma^2 = ln(1 + cv^2)), turning the per-draw cost into one exp
     *  and one multiply. Consumes exactly one normal() draw, like
     *  logNormalMeanCv. */
    double
    logNormalMeanSigma(double mean, double sigma, double half_sigma2)
    {
        return mean * std::exp(sigma * normal() - half_sigma2);
    }

    /** Bernoulli draw with probability p of true. */
    bool bernoulli(double p);

    /** Poisson draw with the given mean (Knuth for small, normal approx
     *  for large means). */
    std::uint64_t poisson(double mean);

    /** Bounded Zipf draw on {1..n} with exponent s. */
    std::uint64_t zipf(std::uint64_t n, double s);

    /** Sample an index from unnormalized non-negative weights. */
    std::size_t weightedIndex(const std::vector<double> &weights);

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(
                uniformInt(0, static_cast<std::int64_t>(i) - 1));
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    std::uint64_t s_[4];
    bool hasSpareNormal_ = false;
    double spareNormal_ = 0.0;
};

} // namespace erms

#endif // ERMS_COMMON_RNG_HPP
