#include "table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "error.hpp"

namespace erms {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    ERMS_ASSERT(!headers_.empty());
}

TextTable &
TextTable::row()
{
    rows_.emplace_back();
    return *this;
}

TextTable &
TextTable::cell(const std::string &value)
{
    ERMS_ASSERT_MSG(!rows_.empty(), "call row() before cell()");
    rows_.back().push_back(value);
    return *this;
}

TextTable &
TextTable::cell(const char *value)
{
    return cell(std::string(value));
}

TextTable &
TextTable::cell(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return cell(os.str());
}

TextTable &
TextTable::cell(std::size_t value)
{
    return cell(std::to_string(value));
}

TextTable &
TextTable::cell(long value)
{
    return cell(std::to_string(value));
}

TextTable &
TextTable::cell(int value)
{
    return cell(std::to_string(value));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t i = 0; i < headers_.size(); ++i)
        widths[i] = headers_[i].size();
    for (const auto &row : rows_) {
        for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    }

    auto print_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string &text = i < cells.size() ? cells[i] : "";
            os << std::left << std::setw(static_cast<int>(widths[i]) + 2)
               << text;
        }
        os << '\n';
    };

    print_row(headers_);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        print_row(row);
}

void
printBanner(std::ostream &os, const std::string &title)
{
    os << '\n' << "== " << title << " ==" << '\n';
}

} // namespace erms
