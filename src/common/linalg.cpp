#include "linalg.hpp"

#include <cmath>

#include "error.hpp"

namespace erms {

std::vector<double>
solveLinearSystem(std::vector<double> a, std::vector<double> b)
{
    const std::size_t n = b.size();
    ERMS_ASSERT(a.size() == n * n);

    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivot.
        std::size_t pivot = col;
        double best = std::fabs(a[col * n + col]);
        for (std::size_t row = col + 1; row < n; ++row) {
            const double mag = std::fabs(a[row * n + col]);
            if (mag > best) {
                best = mag;
                pivot = row;
            }
        }
        if (best < 1e-14)
            return {};
        if (pivot != col) {
            for (std::size_t k = 0; k < n; ++k)
                std::swap(a[pivot * n + k], a[col * n + k]);
            std::swap(b[pivot], b[col]);
        }
        for (std::size_t row = col + 1; row < n; ++row) {
            const double factor = a[row * n + col] / a[col * n + col];
            if (factor == 0.0)
                continue;
            for (std::size_t k = col; k < n; ++k)
                a[row * n + k] -= factor * a[col * n + k];
            b[row] -= factor * b[col];
        }
    }

    std::vector<double> x(n, 0.0);
    for (std::size_t i = n; i-- > 0;) {
        double acc = b[i];
        for (std::size_t k = i + 1; k < n; ++k)
            acc -= a[i * n + k] * x[k];
        x[i] = acc / a[i * n + i];
    }
    return x;
}

std::vector<double>
leastSquares(const std::vector<double> &x, const std::vector<double> &y,
             std::size_t cols, double lambda)
{
    ERMS_ASSERT(cols > 0);
    const std::size_t rows = y.size();
    ERMS_ASSERT(x.size() == rows * cols);
    if (rows == 0)
        return std::vector<double>(cols, 0.0);

    // Normal equations: (X^T X + lambda I) w = X^T y.
    std::vector<double> xtx(cols * cols, 0.0);
    std::vector<double> xty(cols, 0.0);
    for (std::size_t r = 0; r < rows; ++r) {
        const double *row = &x[r * cols];
        for (std::size_t i = 0; i < cols; ++i) {
            xty[i] += row[i] * y[r];
            for (std::size_t j = i; j < cols; ++j)
                xtx[i * cols + j] += row[i] * row[j];
        }
    }
    for (std::size_t i = 0; i < cols; ++i) {
        for (std::size_t j = 0; j < i; ++j)
            xtx[i * cols + j] = xtx[j * cols + i];
        xtx[i * cols + i] += lambda;
    }

    auto w = solveLinearSystem(std::move(xtx), std::move(xty));
    if (w.empty())
        w.assign(cols, 0.0);
    return w;
}

double
residualSumOfSquares(const std::vector<double> &x, const std::vector<double> &y,
                     std::size_t cols, const std::vector<double> &w)
{
    ERMS_ASSERT(w.size() == cols);
    const std::size_t rows = y.size();
    ERMS_ASSERT(x.size() == rows * cols);
    double rss = 0.0;
    for (std::size_t r = 0; r < rows; ++r) {
        double pred = 0.0;
        for (std::size_t c = 0; c < cols; ++c)
            pred += x[r * cols + c] * w[c];
        const double err = pred - y[r];
        rss += err * err;
    }
    return rss;
}

} // namespace erms
