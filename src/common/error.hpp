/**
 * @file
 * Error handling primitives.
 *
 * Following the gem5 fatal()/panic() distinction:
 *  - ErmsError (via throwError) reports conditions caused by bad user
 *    input — an infeasible SLA, a malformed graph — that a caller can
 *    catch and handle.
 *  - ERMS_ASSERT flags internal invariant violations, i.e. library bugs.
 */

#ifndef ERMS_COMMON_ERROR_HPP
#define ERMS_COMMON_ERROR_HPP

#include <sstream>
#include <stdexcept>
#include <string>

namespace erms {

/** Exception type for all user-facing Erms failures. */
class ErmsError : public std::runtime_error
{
  public:
    explicit ErmsError(const std::string &what) : std::runtime_error(what) {}
};

/** Raised when an SLA cannot be met with any finite resource allocation. */
class InfeasibleError : public ErmsError
{
  public:
    explicit InfeasibleError(const std::string &what) : ErmsError(what) {}
};

/** Raised when a dependency graph violates structural requirements. */
class GraphError : public ErmsError
{
  public:
    explicit GraphError(const std::string &what) : ErmsError(what) {}
};

namespace detail {

[[noreturn]] inline void
assertFail(const char *expr, const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << "ERMS internal assertion failed: " << expr << " at " << file << ":"
       << line;
    if (!msg.empty())
        os << " — " << msg;
    throw std::logic_error(os.str());
}

} // namespace detail
} // namespace erms

/** Internal invariant check; failure indicates a bug in Erms itself. */
#define ERMS_ASSERT(expr)                                                     \
    do {                                                                      \
        if (!(expr))                                                          \
            ::erms::detail::assertFail(#expr, __FILE__, __LINE__, "");        \
    } while (0)

/** Internal invariant check with an explanatory message. */
#define ERMS_ASSERT_MSG(expr, msg)                                            \
    do {                                                                      \
        if (!(expr))                                                          \
            ::erms::detail::assertFail(#expr, __FILE__, __LINE__, (msg));     \
    } while (0)

#endif // ERMS_COMMON_ERROR_HPP
