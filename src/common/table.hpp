/**
 * @file
 * Plain-text table/series printer used by the benchmark harnesses so every
 * bench binary emits the paper's rows in a uniform, diff-friendly layout.
 */

#ifndef ERMS_COMMON_TABLE_HPP
#define ERMS_COMMON_TABLE_HPP

#include <ostream>
#include <string>
#include <vector>

namespace erms {

/**
 * Column-aligned text table. Collects string/number cells row by row and
 * renders with padded columns; numeric cells are formatted with fixed
 * precision.
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    /** Begin a new row; subsequent cell() calls append to it. */
    TextTable &row();

    TextTable &cell(const std::string &value);
    TextTable &cell(const char *value);
    TextTable &cell(double value, int precision = 3);
    TextTable &cell(std::size_t value);
    TextTable &cell(long value);
    TextTable &cell(int value);

    /** Render with aligned columns to the stream. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print a titled section banner (used between experiment sub-tables). */
void printBanner(std::ostream &os, const std::string &title);

} // namespace erms

#endif // ERMS_COMMON_TABLE_HPP
