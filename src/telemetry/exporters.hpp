/**
 * @file
 * Scrape-snapshot exporters: CSV (one row per series per scrape) and a
 * minimal JSON document, plus the matching parsers. Doubles are printed
 * with max_digits10 precision, so export → parse round-trips to exact
 * equality (pinned by the exporter round-trip tests); metric names and
 * label keys/values must not contain commas, semicolons, quotes or
 * newlines (the simulator's metric catalog satisfies this by
 * construction).
 */

#ifndef ERMS_TELEMETRY_EXPORTERS_HPP
#define ERMS_TELEMETRY_EXPORTERS_HPP

#include <string>
#include <vector>

#include "telemetry/registry.hpp"

namespace erms::telemetry {

/** CSV document with header row; one row per series per snapshot. */
std::string toCsv(const std::vector<TelemetrySnapshot> &snapshots);

/** Parse a toCsv() document back into snapshots. */
std::vector<TelemetrySnapshot> fromCsv(const std::string &csv);

/** JSON array of scrape objects. */
std::string toJson(const std::vector<TelemetrySnapshot> &snapshots);

/** Parse a toJson() document back into snapshots. */
std::vector<TelemetrySnapshot> fromJson(const std::string &json);

} // namespace erms::telemetry

#endif // ERMS_TELEMETRY_EXPORTERS_HPP
