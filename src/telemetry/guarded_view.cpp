#include "guarded_view.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "telemetry/registry.hpp"

namespace erms::telemetry {

namespace {

// Series-key kinds (first element of SeriesKey).
constexpr int kRate = 0;
constexpr int kServiceP95 = 1;
constexpr int kMsTail = 2;
constexpr int kContainers = 3;
constexpr int kItfCpu = 4;
constexpr int kItfMem = 5;

constexpr int kSeriesKinds = 6;
constexpr int kRejectReasons = 3;

/** Stable label values of the series kinds above. */
constexpr const char *kSeriesKindNames[kSeriesKinds] = {
    "rate",       "service_p95",      "ms_tail",
    "containers", "interference_cpu", "interference_mem",
};

constexpr const char *kRejectReasonNames[kRejectReasons] = {
    "bounds",
    "outlier",
    "clamp",
};

/** State-machine edges the guard can take (see beginCycle). */
constexpr int kTransitionEdges = 4;
constexpr const char *kTransitionNames[kTransitionEdges][2] = {
    {"normal", "suspect"},
    {"suspect", "normal"},
    {"suspect", "fallback"},
    {"fallback", "suspect"},
};

/** Median of a small scratch vector (sorted in place). */
double
medianOf(std::vector<double> &values)
{
    ERMS_ASSERT(!values.empty());
    std::sort(values.begin(), values.end());
    const std::size_t n = values.size();
    return n % 2 == 1 ? values[n / 2]
                      : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

} // namespace

const char *
guardModeName(GuardMode mode)
{
    switch (mode) {
    case GuardMode::Normal:
        return "normal";
    case GuardMode::Suspect:
        return "suspect";
    case GuardMode::Fallback:
        return "fallback";
    }
    return "unknown";
}

void
validateGuardConfig(const GuardConfig &config)
{
    if (config.outlierHistory < 2)
        throw ErmsError("GuardConfig: outlierHistory must be >= 2 "
                        "(a one-slot ring has no history to gate on)");
    if (config.outlierMinHistory < 2)
        throw ErmsError("GuardConfig: outlierMinHistory must be >= 2");
    if (config.outlierMinHistory > config.outlierHistory)
        throw ErmsError(
            "GuardConfig: outlierMinHistory exceeds outlierHistory — the "
            "MAD gate would wait for more samples than the ring retains "
            "and never arm");
    if (!std::isfinite(config.maxStalenessMs) ||
        config.maxStalenessMs <= 0.0)
        throw ErmsError(
            "GuardConfig: maxStalenessMs must be positive and finite");
    if (!std::isfinite(config.maxRateRpm) || config.maxRateRpm <= 0.0)
        throw ErmsError(
            "GuardConfig: maxRateRpm must be positive and finite");
    if (!std::isfinite(config.maxLatencyMs) || config.maxLatencyMs <= 0.0)
        throw ErmsError(
            "GuardConfig: maxLatencyMs must be positive and finite");
    if (!std::isfinite(config.maxInterferenceUtil) ||
        config.maxInterferenceUtil <= 0.0)
        throw ErmsError(
            "GuardConfig: maxInterferenceUtil must be positive and finite");
    if (!std::isfinite(config.madGateMultiplier) ||
        config.madGateMultiplier <= 0.0)
        throw ErmsError(
            "GuardConfig: madGateMultiplier must be positive and finite");
    if (!std::isfinite(config.relativeGateFactor) ||
        config.relativeGateFactor <= 1.0)
        throw ErmsError(
            "GuardConfig: relativeGateFactor must be > 1 (a factor at or "
            "below 1 flags every honest value as an outlier)");
    if (config.suspectBadCyclesToFallback < 1)
        throw ErmsError(
            "GuardConfig: suspectBadCyclesToFallback must be >= 1");
    if (config.recoveryCleanCycles < 1)
        throw ErmsError("GuardConfig: recoveryCleanCycles must be >= 1");
}

/** Metric handles registered by bindMetrics (see guarded_view.hpp). */
struct GuardedTelemetryView::BoundMetrics
{
    Counter *rejects[kSeriesKinds][kRejectReasons] = {};
    Counter *transitions[kTransitionEdges] = {};
    Counter *transitionsTotal = nullptr;
    Gauge *mode = nullptr;
    Gauge *fallbackResidency = nullptr;
};

GuardedTelemetryView::GuardedTelemetryView(
    std::shared_ptr<const TelemetryView> inner, GuardConfig config)
    : inner_(std::move(inner)), config_(config)
{
    ERMS_ASSERT(inner_ != nullptr);
    validateGuardConfig(config_);
}

void
GuardedTelemetryView::retune(const GuardConfig &updated)
{
    validateGuardConfig(updated);
    if (updated.outlierHistory != config_.outlierHistory)
        throw ErmsError(
            "GuardedTelemetryView::retune: outlierHistory is structural "
            "(per-series rings are sized by it) and cannot change live");
    config_ = updated;
}

void
GuardedTelemetryView::bindMetrics(MetricsRegistry &registry)
{
    auto bound = std::make_shared<BoundMetrics>();
    for (int kind = 0; kind < kSeriesKinds; ++kind)
        for (int reason = 0; reason < kRejectReasons; ++reason)
            bound->rejects[kind][reason] = &registry.counter(
                "erms_guard_rejections_total",
                {{"reason", kRejectReasonNames[reason]},
                 {"series", kSeriesKindNames[kind]}});
    for (int edge = 0; edge < kTransitionEdges; ++edge)
        bound->transitions[edge] = &registry.counter(
            "erms_guard_transitions_total",
            {{"from", kTransitionNames[edge][0]},
             {"to", kTransitionNames[edge][1]}});
    bound->transitionsTotal =
        &registry.counter("erms_guard_transitions_total");
    bound->mode = &registry.gauge("erms_guard_mode");
    bound->fallbackResidency =
        &registry.gauge("erms_guard_fallback_residency");
    bound->mode->set(static_cast<double>(mode_));
    bound->fallbackResidency->set(0.0);
    metrics_ = std::move(bound);
}

void
GuardedTelemetryView::recordReject(int kind, RejectReason reason) const
{
    if (metrics_ == nullptr)
        return;
    metrics_->rejects[kind][static_cast<int>(reason)]->inc();
}

void
GuardedTelemetryView::beginCycle(SimTime now)
{
    const double staleness = inner_->stalenessMs(now);
    const bool stale = staleness > config_.maxStalenessMs;
    const bool bad = stale || cycleRejects_ > 0;
    cycleRejects_ = 0;

    ++stats_.cycles;
    if (stale)
        ++stats_.staleCycles;

    const GuardMode before = mode_;
    switch (mode_) {
      case GuardMode::Normal:
        if (bad) {
            mode_ = GuardMode::Suspect;
            badStreak_ = 0;
        }
        break;
      case GuardMode::Suspect:
        if (!bad) {
            mode_ = GuardMode::Normal;
            badStreak_ = 0;
        } else if (++badStreak_ >= config_.suspectBadCyclesToFallback) {
            mode_ = GuardMode::Fallback;
            badStreak_ = 0;
            cleanStreak_ = 0;
        }
        break;
      case GuardMode::Fallback:
        if (bad) {
            cleanStreak_ = 0;
        } else if (++cleanStreak_ >= config_.recoveryCleanCycles) {
            // Re-validate through SUSPECT: scaling stays rate-limited
            // for one more clean cycle before normal operation resumes.
            mode_ = GuardMode::Suspect;
            badStreak_ = 0;
            cleanStreak_ = 0;
        }
        break;
    }

    if (mode_ == GuardMode::Suspect)
        ++stats_.suspectCycles;
    else if (mode_ == GuardMode::Fallback)
        ++stats_.fallbackCycles;

    if (mode_ != before)
        ++stats_.transitions;

    if (metrics_ != nullptr) {
        if (mode_ != before) {
            // Edge index matches kTransitionNames: the machine only
            // takes N→S, S→N, S→F, and F→S (see the state diagram).
            int edge = -1;
            if (before == GuardMode::Normal)
                edge = 0;
            else if (before == GuardMode::Suspect)
                edge = mode_ == GuardMode::Normal ? 1 : 2;
            else
                edge = 3;
            metrics_->transitions[edge]->inc();
            metrics_->transitionsTotal->inc();
        }
        metrics_->mode->set(static_cast<double>(mode_));
        metrics_->fallbackResidency->set(
            static_cast<double>(stats_.fallbackCycles) /
            static_cast<double>(stats_.cycles));
    }
}

double
GuardedTelemetryView::guardValue(SeriesKey key, double x,
                                 double max_bound,
                                 bool outlier_gate) const
{
    // Zero is the inner view's no-data sentinel: pass through untouched
    // so a guarded clean stream stays bit-identical to the raw one.
    if (x == 0.0)
        return 0.0;

    SeriesGuard &guard = series_[key];
    const auto reject = [&](std::uint64_t &counter, RejectReason reason) {
        ++counter;
        ++cycleRejects_;
        recordReject(key.first, reason);
        if (guard.hasLastGood) {
            ++stats_.substitutedLastGood;
            return guard.lastGood;
        }
        return 0.0;
    };
    const auto remember = [&](double v) {
        if (guard.history.size() < config_.outlierHistory) {
            guard.history.push_back(v);
        } else {
            guard.history[guard.next] = v;
            guard.next = (guard.next + 1) % config_.outlierHistory;
        }
        guard.hasLastGood = true;
        guard.lastGood = v;
        return v;
    };

    if (!std::isfinite(x) || x < 0.0 || x > max_bound)
        return reject(stats_.rejectedBounds, RejectReason::Bounds);

    // Cold-start dynamics are honestly violent for most series — a
    // bootstrap p95 spike settles 100x, host utilization climbs from
    // near-idle — so the gate normally waits for outlierMinHistory
    // accepted samples. Request rates are the exception: they move
    // smoothly on a clean stream, and a corrupt rate accepted during
    // warmup poisons last-known-good right when the controller trusts
    // it most, so for rates the relative gate arms at the very first
    // accepted sample (the median of one value is that value).
    const std::size_t arm_at =
        key.first == kRate ? 1 : config_.outlierMinHistory;
    if (outlier_gate && guard.history.size() >= arm_at) {
        std::vector<double> scratch = guard.history;
        const double median = medianOf(scratch);
        const double deviation = std::abs(x - median);
        const double rel = config_.relativeGateFactor;
        const bool far_in_ratio =
            median > 0.0 && (x > rel * median || x * rel < median);
        bool far_in_mad = true;
        if (guard.history.size() >= config_.outlierMinHistory) {
            // Settled history: the MAD gate must concur, so honest
            // drift in a noisy series survives the ratio test.
            for (double &v : scratch)
                v = std::abs(v - median);
            const double mad = medianOf(scratch);
            // A constant history has MAD 0: any deviation is then
            // infinitely many MADs out, so the gate falls through to
            // the relative test.
            far_in_mad =
                mad > 1e-12 ? deviation > config_.madGateMultiplier * mad
                            : deviation > 1e-12;
        }
        // Below outlierMinHistory the MAD estimate is meaningless, but
        // a sample several-fold off the early median is still far more
        // likely corruption than signal — the warmup window is exactly
        // when a bad accepted value would poison last-known-good, so
        // the relative gate stands alone there.
        if (far_in_mad && far_in_ratio) {
            if (x > median) {
                // Fail-safe asymmetry: every guarded series (rates,
                // latencies, utilizations) over-provisions when it errs
                // high but tears down needed capacity when it errs low.
                // A high-side outlier is therefore kept as a bounded up
                // signal — serve the relative-gate ceiling instead of
                // the raw spike, and record it so the median may climb
                // at most relativeGateFactor per sample. A genuine
                // regime change is tracked within a few cycles instead
                // of being locked out forever.
                ++stats_.clampedOutliers;
                ++cycleRejects_;
                recordReject(key.first, RejectReason::Clamp);
                return remember(rel * median);
            }
            return reject(stats_.rejectedOutliers, RejectReason::Outlier);
        }
    }

    return remember(x);
}

double
GuardedTelemetryView::observedRate(ServiceId service) const
{
    return guardValue({kRate, service}, inner_->observedRate(service),
                      config_.maxRateRpm);
}

Interference
GuardedTelemetryView::clusterInterference() const
{
    const Interference raw = inner_->clusterInterference();
    Interference guarded;
    guarded.cpuUtil = guardValue({kItfCpu, 0}, raw.cpuUtil,
                                 config_.maxInterferenceUtil);
    guarded.memUtil = guardValue({kItfMem, 0}, raw.memUtil,
                                 config_.maxInterferenceUtil);
    return guarded;
}

double
GuardedTelemetryView::serviceP95Ms(ServiceId service) const
{
    return guardValue({kServiceP95, service},
                      inner_->serviceP95Ms(service), config_.maxLatencyMs);
}

double
GuardedTelemetryView::microserviceTailMs(MicroserviceId ms) const
{
    return guardValue({kMsTail, ms}, inner_->microserviceTailMs(ms),
                      config_.maxLatencyMs);
}

int
GuardedTelemetryView::containerCount(MicroserviceId ms) const
{
    const int raw = inner_->containerCount(ms);
    // -1 is the "series absent" sentinel; anything else must be a
    // plausible container count.
    if (raw == -1)
        return -1;
    // Bounds + last-known-good only: scaling legitimately moves
    // container counts in large steps, so the outlier gate would
    // misfire on honest scale events.
    const double guarded = guardValue(
        {kContainers, ms}, static_cast<double>(raw), 1.0e6,
        /*outlier_gate=*/false);
    return static_cast<int>(guarded);
}

double
GuardedTelemetryView::stalenessMs(SimTime now) const
{
    return inner_->stalenessMs(now);
}

} // namespace erms::telemetry
