#include "guarded_view.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace erms::telemetry {

namespace {

// Series-key kinds (first element of SeriesKey).
constexpr int kRate = 0;
constexpr int kServiceP95 = 1;
constexpr int kMsTail = 2;
constexpr int kContainers = 3;
constexpr int kItfCpu = 4;
constexpr int kItfMem = 5;

/** Median of a small scratch vector (sorted in place). */
double
medianOf(std::vector<double> &values)
{
    ERMS_ASSERT(!values.empty());
    std::sort(values.begin(), values.end());
    const std::size_t n = values.size();
    return n % 2 == 1 ? values[n / 2]
                      : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

} // namespace

const char *
guardModeName(GuardMode mode)
{
    switch (mode) {
    case GuardMode::Normal:
        return "normal";
    case GuardMode::Suspect:
        return "suspect";
    case GuardMode::Fallback:
        return "fallback";
    }
    return "unknown";
}

GuardedTelemetryView::GuardedTelemetryView(
    std::shared_ptr<const TelemetryView> inner, GuardConfig config)
    : inner_(std::move(inner)), config_(config)
{
    ERMS_ASSERT(inner_ != nullptr);
    ERMS_ASSERT(config_.outlierHistory >= 2);
    ERMS_ASSERT(config_.outlierMinHistory >= 2);
    ERMS_ASSERT(config_.relativeGateFactor > 1.0);
    ERMS_ASSERT(config_.suspectBadCyclesToFallback >= 1);
    ERMS_ASSERT(config_.recoveryCleanCycles >= 1);
}

void
GuardedTelemetryView::beginCycle(SimTime now)
{
    const double staleness = inner_->stalenessMs(now);
    const bool stale = staleness > config_.maxStalenessMs;
    const bool bad = stale || cycleRejects_ > 0;
    cycleRejects_ = 0;

    ++stats_.cycles;
    if (stale)
        ++stats_.staleCycles;

    switch (mode_) {
      case GuardMode::Normal:
        if (bad) {
            mode_ = GuardMode::Suspect;
            badStreak_ = 0;
        }
        break;
      case GuardMode::Suspect:
        if (!bad) {
            mode_ = GuardMode::Normal;
            badStreak_ = 0;
        } else if (++badStreak_ >= config_.suspectBadCyclesToFallback) {
            mode_ = GuardMode::Fallback;
            badStreak_ = 0;
            cleanStreak_ = 0;
        }
        break;
      case GuardMode::Fallback:
        if (bad) {
            cleanStreak_ = 0;
        } else if (++cleanStreak_ >= config_.recoveryCleanCycles) {
            // Re-validate through SUSPECT: scaling stays rate-limited
            // for one more clean cycle before normal operation resumes.
            mode_ = GuardMode::Suspect;
            badStreak_ = 0;
            cleanStreak_ = 0;
        }
        break;
    }

    if (mode_ == GuardMode::Suspect)
        ++stats_.suspectCycles;
    else if (mode_ == GuardMode::Fallback)
        ++stats_.fallbackCycles;
}

double
GuardedTelemetryView::guardValue(SeriesKey key, double x,
                                 double max_bound,
                                 bool outlier_gate) const
{
    // Zero is the inner view's no-data sentinel: pass through untouched
    // so a guarded clean stream stays bit-identical to the raw one.
    if (x == 0.0)
        return 0.0;

    SeriesGuard &guard = series_[key];
    const auto reject = [&](std::uint64_t &counter) {
        ++counter;
        ++cycleRejects_;
        if (guard.hasLastGood) {
            ++stats_.substitutedLastGood;
            return guard.lastGood;
        }
        return 0.0;
    };
    const auto remember = [&](double v) {
        if (guard.history.size() < config_.outlierHistory) {
            guard.history.push_back(v);
        } else {
            guard.history[guard.next] = v;
            guard.next = (guard.next + 1) % config_.outlierHistory;
        }
        guard.hasLastGood = true;
        guard.lastGood = v;
        return v;
    };

    if (!std::isfinite(x) || x < 0.0 || x > max_bound)
        return reject(stats_.rejectedBounds);

    // Cold-start dynamics are honestly violent for most series — a
    // bootstrap p95 spike settles 100x, host utilization climbs from
    // near-idle — so the gate normally waits for outlierMinHistory
    // accepted samples. Request rates are the exception: they move
    // smoothly on a clean stream, and a corrupt rate accepted during
    // warmup poisons last-known-good right when the controller trusts
    // it most, so for rates the relative gate arms at the very first
    // accepted sample (the median of one value is that value).
    const std::size_t arm_at =
        key.first == kRate ? 1 : config_.outlierMinHistory;
    if (outlier_gate && guard.history.size() >= arm_at) {
        std::vector<double> scratch = guard.history;
        const double median = medianOf(scratch);
        const double deviation = std::abs(x - median);
        const double rel = config_.relativeGateFactor;
        const bool far_in_ratio =
            median > 0.0 && (x > rel * median || x * rel < median);
        bool far_in_mad = true;
        if (guard.history.size() >= config_.outlierMinHistory) {
            // Settled history: the MAD gate must concur, so honest
            // drift in a noisy series survives the ratio test.
            for (double &v : scratch)
                v = std::abs(v - median);
            const double mad = medianOf(scratch);
            // A constant history has MAD 0: any deviation is then
            // infinitely many MADs out, so the gate falls through to
            // the relative test.
            far_in_mad =
                mad > 1e-12 ? deviation > config_.madGateMultiplier * mad
                            : deviation > 1e-12;
        }
        // Below outlierMinHistory the MAD estimate is meaningless, but
        // a sample several-fold off the early median is still far more
        // likely corruption than signal — the warmup window is exactly
        // when a bad accepted value would poison last-known-good, so
        // the relative gate stands alone there.
        if (far_in_mad && far_in_ratio) {
            if (x > median) {
                // Fail-safe asymmetry: every guarded series (rates,
                // latencies, utilizations) over-provisions when it errs
                // high but tears down needed capacity when it errs low.
                // A high-side outlier is therefore kept as a bounded up
                // signal — serve the relative-gate ceiling instead of
                // the raw spike, and record it so the median may climb
                // at most relativeGateFactor per sample. A genuine
                // regime change is tracked within a few cycles instead
                // of being locked out forever.
                ++stats_.clampedOutliers;
                ++cycleRejects_;
                return remember(rel * median);
            }
            return reject(stats_.rejectedOutliers);
        }
    }

    return remember(x);
}

double
GuardedTelemetryView::observedRate(ServiceId service) const
{
    return guardValue({kRate, service}, inner_->observedRate(service),
                      config_.maxRateRpm);
}

Interference
GuardedTelemetryView::clusterInterference() const
{
    const Interference raw = inner_->clusterInterference();
    Interference guarded;
    guarded.cpuUtil = guardValue({kItfCpu, 0}, raw.cpuUtil,
                                 config_.maxInterferenceUtil);
    guarded.memUtil = guardValue({kItfMem, 0}, raw.memUtil,
                                 config_.maxInterferenceUtil);
    return guarded;
}

double
GuardedTelemetryView::serviceP95Ms(ServiceId service) const
{
    return guardValue({kServiceP95, service},
                      inner_->serviceP95Ms(service), config_.maxLatencyMs);
}

double
GuardedTelemetryView::microserviceTailMs(MicroserviceId ms) const
{
    return guardValue({kMsTail, ms}, inner_->microserviceTailMs(ms),
                      config_.maxLatencyMs);
}

int
GuardedTelemetryView::containerCount(MicroserviceId ms) const
{
    const int raw = inner_->containerCount(ms);
    // -1 is the "series absent" sentinel; anything else must be a
    // plausible container count.
    if (raw == -1)
        return -1;
    // Bounds + last-known-good only: scaling legitimately moves
    // container counts in large steps, so the outlier gate would
    // misfire on honest scale events.
    const double guarded = guardValue(
        {kContainers, ms}, static_cast<double>(raw), 1.0e6,
        /*outlier_gate=*/false);
    return static_cast<int>(guarded);
}

double
GuardedTelemetryView::stalenessMs(SimTime now) const
{
    return inner_->stalenessMs(now);
}

} // namespace erms::telemetry
