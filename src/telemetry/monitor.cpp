#include "monitor.hpp"

#include "common/error.hpp"
#include "trace/span.hpp"

namespace erms::telemetry {

namespace {

Labels
serviceLabels(ServiceId service)
{
    return {{"service", std::to_string(service)}};
}

Labels
microserviceLabels(MicroserviceId ms)
{
    return {{"microservice", std::to_string(ms)}};
}

Labels
hostLabels(HostId host)
{
    return {{"host", std::to_string(host)}};
}

} // namespace

SimMonitor::SimMonitor(MonitorConfig config) : config_(std::move(config))
{
    ERMS_ASSERT(config_.scrapeIntervalSec > 0.0);
    ERMS_ASSERT(config_.spanSampleProbability >= 0.0 &&
                config_.spanSampleProbability <= 1.0);
    ERMS_ASSERT(!config_.latencyBucketsMs.empty());
}

bool
SimMonitor::sampleSpan(RequestId request) const
{
    return hashSampleRequest(request, config_.spanSampleProbability);
}

SimMonitor::ServiceSeries &
SimMonitor::serviceSeries(ServiceId service)
{
    auto it = serviceSeries_.find(service);
    if (it != serviceSeries_.end())
        return it->second;
    const Labels labels = serviceLabels(service);
    ServiceSeries series;
    series.requests = &registry_.counter("erms_requests_total", labels);
    series.responses = &registry_.counter("erms_responses_total", labels);
    series.failures =
        &registry_.counter("erms_request_failures_total", labels);
    series.slaViolations =
        &registry_.counter("erms_sla_violations_total", labels);
    series.latency = &registry_.histogram("erms_request_latency_ms", labels,
                                          config_.latencyBucketsMs);
    return serviceSeries_.emplace(service, series).first->second;
}

SimMonitor::MicroserviceSeries &
SimMonitor::microserviceSeries(MicroserviceId ms)
{
    auto it = msSeries_.find(ms);
    if (it != msSeries_.end())
        return it->second;
    const Labels labels = microserviceLabels(ms);
    MicroserviceSeries series;
    series.latency = &registry_.histogram("erms_ms_latency_ms", labels,
                                          config_.latencyBucketsMs);
    series.retries = &registry_.counter("erms_retries_total", labels);
    series.hedges = &registry_.counter("erms_hedges_total", labels);
    series.timeouts = &registry_.counter("erms_timeouts_total", labels);
    series.transientFailures =
        &registry_.counter("erms_transient_failures_total", labels);
    series.crashFailures =
        &registry_.counter("erms_crash_failures_total", labels);
    series.containerCrashes =
        &registry_.counter("erms_container_crashes_total", labels);
    series.containerRestarts =
        &registry_.counter("erms_container_restarts_total", labels);
    series.containers = &registry_.gauge("erms_containers", labels);
    series.queueDepth = &registry_.gauge("erms_queue_depth", labels);
    series.busyThreads = &registry_.gauge("erms_busy_threads", labels);
    return msSeries_.emplace(ms, series).first->second;
}

SimMonitor::HostSeries &
SimMonitor::hostSeries(HostId host)
{
    auto it = hostSeries_.find(host);
    if (it != hostSeries_.end())
        return it->second;
    const Labels labels = hostLabels(host);
    HostSeries series;
    series.cpuUtil = &registry_.gauge("erms_host_cpu_util", labels);
    series.memUtil = &registry_.gauge("erms_host_mem_util", labels);
    series.slowdownWindows =
        &registry_.counter("erms_slowdown_windows_total", labels);
    return hostSeries_.emplace(host, series).first->second;
}

void
SimMonitor::onRequestArrival(ServiceId service)
{
    serviceSeries(service).requests->inc();
}

void
SimMonitor::onRequestComplete(ServiceId service, double latency_ms,
                              bool sla_violated, bool span_sampled)
{
    ServiceSeries &series = serviceSeries(service);
    series.responses->inc();
    if (sla_violated)
        series.slaViolations->inc();
    if (span_sampled)
        series.latency->observe(latency_ms);
}

void
SimMonitor::onRequestFailed(ServiceId service)
{
    ServiceSeries &series = serviceSeries(service);
    series.failures->inc();
    // A failed request violates its SLA by definition (cf.
    // SimMetrics::sloViolationRate).
    series.slaViolations->inc();
}

void
SimMonitor::onMicroserviceLatency(MicroserviceId ms, double latency_ms,
                                  bool span_sampled)
{
    if (span_sampled)
        microserviceSeries(ms).latency->observe(latency_ms);
}

void
SimMonitor::onRetry(MicroserviceId ms)
{
    microserviceSeries(ms).retries->inc();
}

void
SimMonitor::onHedge(MicroserviceId ms)
{
    microserviceSeries(ms).hedges->inc();
}

void
SimMonitor::onTimeout(MicroserviceId ms)
{
    microserviceSeries(ms).timeouts->inc();
}

void
SimMonitor::onTransientFailure(MicroserviceId ms)
{
    microserviceSeries(ms).transientFailures->inc();
}

void
SimMonitor::onCrashFailure(MicroserviceId ms)
{
    microserviceSeries(ms).crashFailures->inc();
}

void
SimMonitor::onContainerCrash(MicroserviceId ms)
{
    microserviceSeries(ms).containerCrashes->inc();
}

void
SimMonitor::onContainerRestart(MicroserviceId ms)
{
    microserviceSeries(ms).containerRestarts->inc();
}

void
SimMonitor::onSlowdownWindow(HostId host)
{
    hostSeries(host).slowdownWindows->inc();
}

void
SimMonitor::recordFaultSchedule(std::size_t crashes, std::size_t slowdowns)
{
    registry_.gauge("erms_fault_planned_crashes")
        .set(static_cast<double>(crashes));
    registry_.gauge("erms_fault_planned_slowdowns")
        .set(static_cast<double>(slowdowns));
}

void
SimMonitor::recordHostUtil(HostId host, double cpu_util, double mem_util)
{
    HostSeries &series = hostSeries(host);
    series.cpuUtil->set(cpu_util);
    series.memUtil->set(mem_util);
}

void
SimMonitor::recordDeployment(MicroserviceId ms, int containers,
                             std::size_t queue_depth, int busy_threads)
{
    MicroserviceSeries &series = microserviceSeries(ms);
    series.containers->set(static_cast<double>(containers));
    series.queueDepth->set(static_cast<double>(queue_depth));
    series.busyThreads->set(static_cast<double>(busy_threads));
}

void
SimMonitor::takeSnapshot(SimTime at)
{
    snapshots_.push_back(registry_.snapshot(at));
}

} // namespace erms::telemetry
