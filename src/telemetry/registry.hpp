/**
 * @file
 * Prometheus-style metrics primitives for the online telemetry
 * subsystem: monotonic counters (sharded atomics so concurrent runner
 * workers can share one registry without contention), gauges, and
 * fixed-boundary histograms with bucket-interpolated quantile
 * estimation — the information model of the paper's §5 monitoring loop
 * (Prometheus counters + Jaeger latency spans scraped on an interval),
 * as opposed to the oracle statistics the simulator keeps internally.
 *
 * Determinism contract: recording into metrics never draws from any
 * RNG and never schedules events, so attaching telemetry to a
 * simulation cannot change its request-level behaviour (pinned by the
 * TelemetryTransparency property suite).
 */

#ifndef ERMS_TELEMETRY_REGISTRY_HPP
#define ERMS_TELEMETRY_REGISTRY_HPP

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace erms::telemetry {

/** Sorted (key, value) label pairs identifying one series. */
using Labels = std::vector<std::pair<std::string, std::string>>;

/** Kind of one metric series. */
enum class MetricKind
{
    Counter,
    Gauge,
    Histogram,
};

/**
 * Monotonic event counter. Increments land on one of a few
 * cache-line-padded atomic shards picked by thread identity, so
 * parallel-runner workers sharing a registry never serialize on a
 * single hot cache line; value() sums the shards.
 */
class Counter
{
  public:
    static constexpr std::size_t kShards = 8;

    void add(std::uint64_t n = 1);
    void inc() { add(1); }

    std::uint64_t value() const;

  private:
    struct alignas(64) Shard
    {
        std::atomic<std::uint64_t> value{0};
    };
    Shard shards_[kShards];
};

/** Last-write-wins instantaneous value (queue depth, utilization). */
class Gauge
{
  public:
    void set(double v) { bits_.store(pack(v), std::memory_order_relaxed); }
    double value() const { return unpack(bits_.load(std::memory_order_relaxed)); }

  private:
    static std::uint64_t pack(double v);
    static double unpack(std::uint64_t bits);

    std::atomic<std::uint64_t> bits_{pack(0.0)};
};

/**
 * Fixed-boundary histogram: boundaries are upper bounds of the finite
 * buckets (ascending); one implicit +inf bucket catches the overflow.
 * observe() is lock-free; quantile() interpolates linearly inside the
 * selected bucket (the Prometheus histogram_quantile estimator), so
 * estimates carry bucket-resolution error by design.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<double> boundaries);

    void observe(double x);

    std::uint64_t count() const;
    double sum() const;
    const std::vector<double> &boundaries() const { return boundaries_; }

    /** Per-bucket counts, finite buckets first, +inf bucket last. */
    std::vector<std::uint64_t> bucketCounts() const;

    /** Estimated quantile (q in [0, 1]); 0 when empty. */
    double quantile(double q) const;

    /** Accumulate another histogram (must share boundaries). Bucket
     *  counts merge exactly; sums add in call order. */
    void merge(const Histogram &other);

  private:
    std::vector<double> boundaries_;
    std::deque<std::atomic<std::uint64_t>> buckets_; ///< size = bounds + 1
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sumBits_{0}; ///< packed double, CAS-added
};

/**
 * Quantile estimate from exported histogram state (shared by
 * Histogram::quantile and snapshot consumers): linear interpolation
 * within the bucket containing rank q * count; the +inf bucket reports
 * its lower boundary (nothing finer is known).
 */
double histogramQuantile(const std::vector<double> &boundaries,
                         const std::vector<std::uint64_t> &bucket_counts,
                         double q);

/** Latency bucket ladder used by the simulator series (ms). */
std::vector<double> defaultLatencyBucketsMs();

/** Exported state of one series at one scrape. */
struct SeriesSnapshot
{
    std::string name;
    Labels labels;
    MetricKind kind = MetricKind::Counter;
    std::uint64_t counterValue = 0; ///< Counter
    double gaugeValue = 0.0;        ///< Gauge
    std::uint64_t count = 0;        ///< Histogram observations
    double sum = 0.0;               ///< Histogram sum
    std::vector<double> boundaries;
    std::vector<std::uint64_t> bucketCounts;

    /** Equality compares doubles by bit pattern (NaN == NaN), so
     *  round-trip checks work on series holding non-finite values. */
    bool operator==(const SeriesSnapshot &other) const;
};

/** All series captured at one scrape instant (sim time in µs). */
struct TelemetrySnapshot
{
    SimTime at = 0;
    std::vector<SeriesSnapshot> series; ///< sorted by (name, labels)

    /** Series lookup; nullptr when absent. */
    const SeriesSnapshot *find(const std::string &name,
                               const Labels &labels) const;

    bool operator==(const TelemetrySnapshot &other) const;
};

/**
 * Owner of all metric series. Registration is mutex-guarded and
 * idempotent (same name + labels returns the same object); returned
 * references stay valid for the registry's lifetime. Recording through
 * the returned handles is lock-free.
 */
class MetricsRegistry
{
  public:
    Counter &counter(const std::string &name, const Labels &labels = {});
    Gauge &gauge(const std::string &name, const Labels &labels = {});
    Histogram &histogram(const std::string &name, const Labels &labels,
                         const std::vector<double> &boundaries);

    /** Number of registered series. */
    std::size_t seriesCount() const;

    /** Capture every series, deterministically ordered by
     *  (name, labels). */
    TelemetrySnapshot snapshot(SimTime at) const;

  private:
    struct Entry
    {
        std::string name;
        Labels labels;
        MetricKind kind = MetricKind::Counter;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Entry &findOrCreate(const std::string &name, const Labels &labels,
                        MetricKind kind);

    mutable std::mutex mutex_;
    std::deque<Entry> entries_;
    std::map<std::pair<std::string, Labels>, Entry *> index_;
};

} // namespace erms::telemetry

#endif // ERMS_TELEMETRY_REGISTRY_HPP
