/**
 * @file
 * SimMonitor — the online telemetry pipeline of one simulation run,
 * standing in for the paper's §5 monitoring loop (Prometheus counters +
 * Jaeger spans, scraped on an interval). The simulator pushes events
 * into the monitor's metric series as they happen; the simulator's
 * event queue calls takeSnapshot() every scrape interval, freezing all
 * series into a TelemetrySnapshot. Consumers (ScrapedTelemetryView,
 * exporters) only ever see those snapshots — stale, interval-sampled,
 * span-sampled — never the simulator's oracle state.
 *
 * Metric catalog (see docs/telemetry.md):
 *   erms_requests_total{service}            counter  (arrivals)
 *   erms_responses_total{service}           counter  (successes)
 *   erms_request_failures_total{service}    counter
 *   erms_sla_violations_total{service}      counter
 *   erms_request_latency_ms{service}        histogram (span-sampled)
 *   erms_ms_latency_ms{microservice}        histogram (span-sampled)
 *   erms_retries_total{microservice}        counter
 *   erms_hedges_total{microservice}         counter
 *   erms_timeouts_total{microservice}       counter
 *   erms_transient_failures_total{microservice} counter
 *   erms_crash_failures_total{microservice} counter
 *   erms_container_crashes_total{microservice}  counter
 *   erms_container_restarts_total{microservice} counter
 *   erms_slowdown_windows_total{host}       counter
 *   erms_host_cpu_util{host} / erms_host_mem_util{host}  gauge
 *   erms_containers{microservice}           gauge
 *   erms_queue_depth{microservice}          gauge
 *   erms_busy_threads{microservice}         gauge
 *   erms_fault_planned_crashes / _slowdowns gauge (schedule size)
 */

#ifndef ERMS_TELEMETRY_MONITOR_HPP
#define ERMS_TELEMETRY_MONITOR_HPP

#include <unordered_map>

#include "telemetry/registry.hpp"

namespace erms::telemetry {

/** Scrape/sampling knobs of one monitor. */
struct MonitorConfig
{
    /** Scrape interval in simulated seconds (the paper's runtime polls
     *  its monitoring stack on the order of tens of seconds). */
    double scrapeIntervalSec = 30.0;
    /** Fraction of requests whose latency spans are recorded (Jaeger
     *  head sampling; §5.1 runs production tracing at low rates). */
    double spanSampleProbability = 0.10;
    /** Histogram boundaries for latency series (ms). */
    std::vector<double> latencyBucketsMs = defaultLatencyBucketsMs();
};

/**
 * Telemetry pipeline of one simulation run. Hook methods are cheap
 * (cached handle + one atomic add) and never draw randomness; gauge
 * refresh and snapshotting happen only at scrape instants.
 */
class SimMonitor
{
  public:
    explicit SimMonitor(MonitorConfig config = {});

    const MonitorConfig &config() const { return config_; }
    MetricsRegistry &registry() { return registry_; }
    const MetricsRegistry &registry() const { return registry_; }

    /** Should this request's latency spans be recorded? Deterministic
     *  hash sampling; consumes no RNG state. */
    bool sampleSpan(RequestId request) const;

    // --- request-path hooks (called by the simulator) -----------------

    void onRequestArrival(ServiceId service);
    void onRequestComplete(ServiceId service, double latency_ms,
                           bool sla_violated, bool span_sampled);
    void onRequestFailed(ServiceId service);
    void onMicroserviceLatency(MicroserviceId ms, double latency_ms,
                               bool span_sampled);

    // --- fault / resilience hooks --------------------------------------

    void onRetry(MicroserviceId ms);
    void onHedge(MicroserviceId ms);
    void onTimeout(MicroserviceId ms);
    void onTransientFailure(MicroserviceId ms);
    void onCrashFailure(MicroserviceId ms);
    void onContainerCrash(MicroserviceId ms);
    void onContainerRestart(MicroserviceId ms);
    void onSlowdownWindow(HostId host);
    void recordFaultSchedule(std::size_t crashes, std::size_t slowdowns);

    // --- scrape-time state (pushed by the simulator) -------------------

    void recordHostUtil(HostId host, double cpu_util, double mem_util);
    void recordDeployment(MicroserviceId ms, int containers,
                          std::size_t queue_depth, int busy_threads);

    /** Freeze all series into a snapshot stamped with the given sim
     *  time and append it to snapshots(). */
    void takeSnapshot(SimTime at);

    /** All scrapes taken so far, time-ascending. */
    const std::vector<TelemetrySnapshot> &snapshots() const
    {
        return snapshots_;
    }

  private:
    struct ServiceSeries
    {
        Counter *requests = nullptr;
        Counter *responses = nullptr;
        Counter *failures = nullptr;
        Counter *slaViolations = nullptr;
        Histogram *latency = nullptr;
    };
    struct MicroserviceSeries
    {
        Histogram *latency = nullptr;
        Counter *retries = nullptr;
        Counter *hedges = nullptr;
        Counter *timeouts = nullptr;
        Counter *transientFailures = nullptr;
        Counter *crashFailures = nullptr;
        Counter *containerCrashes = nullptr;
        Counter *containerRestarts = nullptr;
        Gauge *containers = nullptr;
        Gauge *queueDepth = nullptr;
        Gauge *busyThreads = nullptr;
    };
    struct HostSeries
    {
        Gauge *cpuUtil = nullptr;
        Gauge *memUtil = nullptr;
        Counter *slowdownWindows = nullptr;
    };

    ServiceSeries &serviceSeries(ServiceId service);
    MicroserviceSeries &microserviceSeries(MicroserviceId ms);
    HostSeries &hostSeries(HostId host);

    MonitorConfig config_;
    MetricsRegistry registry_;
    std::vector<TelemetrySnapshot> snapshots_;
    std::unordered_map<ServiceId, ServiceSeries> serviceSeries_;
    std::unordered_map<MicroserviceId, MicroserviceSeries> msSeries_;
    std::unordered_map<HostId, HostSeries> hostSeries_;
};

} // namespace erms::telemetry

#endif // ERMS_TELEMETRY_MONITOR_HPP
