/**
 * @file
 * GuardedTelemetryView — a self-defending decorator over any
 * TelemetryView. The paper's provisioning loop (§5, Eq. 14–19) trusts
 * its monitoring stack unconditionally; a controller acting on stale or
 * corrupted metrics can tear down exactly the containers it needs. The
 * guard inserts three defenses between the pipeline and the controller:
 *
 *  1. **Sanity bounds** — non-finite, negative, or absurdly large
 *     observations are rejected outright;
 *  2. **Outlier rejection** — per series, a value far outside the
 *     recent history (beyond `madGateMultiplier` median-absolute-
 *     deviations AND beyond `relativeGateFactor`× the running median)
 *     is rejected as corrupt;
 *  3. **Last-known-good memory** — every rejected query answers with
 *     the series' last accepted value instead of the corrupt one.
 *
 * A degraded-mode state machine summarizes pipeline health for the
 * controller guardrails (makeGuardedController in src/core):
 *
 *        bad                bad
 *   NORMAL ──► SUSPECT ──► FALLBACK ─┐ bad (streak resets)
 *     ▲  clean  │  ▲                 │
 *     └─────────┘  └───── SUSPECT ◄──┘ clean × recoveryCleanCycles
 *                   (re-validation before resuming normal scaling)
 *
 * A cycle is "bad" when the newest scrape is older than
 * `maxStalenessMs` or any query was rejected since the previous cycle.
 *
 * Transparency contract: over a clean stream every guard is inert —
 * each query returns the inner view's value bit-for-bit, and the mode
 * stays NORMAL (pinned by the chaos test suite across ≥ 20 seeds).
 * Zero is the inner view's no-data sentinel and always passes through
 * unmodified.
 */

#ifndef ERMS_TELEMETRY_GUARDED_VIEW_HPP
#define ERMS_TELEMETRY_GUARDED_VIEW_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "telemetry/view.hpp"

namespace erms::telemetry {

class MetricsRegistry;

/** Health of the observability pipeline as judged by the guard. */
enum class GuardMode
{
    Normal,   ///< telemetry trusted; controllers scale freely
    Suspect,  ///< one bad cycle: rate-limit scaling, no scale-downs
    Fallback, ///< telemetry untrusted: hold/over-provision last good
};

/** Stable lowercase name of a guard mode ("normal"/"suspect"/
 *  "fallback") — the spelling pinned in golden tables and campaign
 *  archives. */
const char *guardModeName(GuardMode mode);

/** Knobs of the guard. Defaults are deliberately conservative so that
 *  clean streams never trip a gate (the transparency contract). */
struct GuardConfig
{
    /** Newest-scrape age beyond which a cycle is bad (ms). Three
     *  missed 30 s scrapes with the default monitor interval. */
    double maxStalenessMs = 90000.0;
    /** Sanity ceiling for observed rates (requests/minute). */
    double maxRateRpm = 1.0e7;
    /** Sanity ceiling for latency observations (ms). */
    double maxLatencyMs = 60000.0;
    /** Sanity ceiling for interference utilizations. */
    double maxInterferenceUtil = 4.0;
    /** MAD gate: reject when |x - median| > multiplier * MAD ... */
    double madGateMultiplier = 8.0;
    /** ... AND x is beyond factor× (or 1/factor×) the median. */
    double relativeGateFactor = 3.0;
    /** Ring size of the per-series accepted-value history. */
    std::size_t outlierHistory = 8;
    /** Accepted values before the MAD gate arms. With 2..N-1 samples
     *  the relative-ratio gate stands alone (MAD is meaningless on a
     *  couple of points, but a several-fold jump is still suspect). */
    std::size_t outlierMinHistory = 5;
    /** Consecutive bad cycles tolerated in SUSPECT before FALLBACK. */
    int suspectBadCyclesToFallback = 1;
    /** Consecutive clean cycles in FALLBACK before re-validation
     *  (FALLBACK → SUSPECT; one more clean cycle reaches NORMAL). */
    int recoveryCleanCycles = 2;
};

/**
 * Reject nonsensical knob combinations loudly at construction time
 * instead of silently accepting a guard that cannot work: history
 * depths below 2, an arming threshold above the ring it arms on
 * (`outlierMinHistory > outlierHistory`), non-positive gate multipliers
 * or sanity ceilings, a relative gate at or below 1 (which would flag
 * every value), and state-machine thresholds below one cycle.
 * @throws ErmsError naming the offending knob.
 */
void validateGuardConfig(const GuardConfig &config);

/** Tallies of guard activity (test/bench observability). */
struct GuardStats
{
    std::uint64_t cycles = 0;
    std::uint64_t staleCycles = 0;
    std::uint64_t suspectCycles = 0;
    std::uint64_t fallbackCycles = 0;
    std::uint64_t rejectedBounds = 0;
    std::uint64_t rejectedOutliers = 0;
    /** High-side outliers served as the relative-gate ceiling instead
     *  of the raw spike (fail-safe: err high, never low). */
    std::uint64_t clampedOutliers = 0;
    std::uint64_t substitutedLastGood = 0;
    /** Degraded-mode state-machine transitions (any edge). */
    std::uint64_t transitions = 0;
};

/**
 * The self-defending view. Not thread-safe (like the simulator it
 * observes); query methods are const but maintain mutable per-series
 * memory, as the inner views maintain mutable snapshot caches.
 */
class GuardedTelemetryView : public TelemetryView
{
  public:
    /** The inner view must outlive the guard. */
    explicit GuardedTelemetryView(
        std::shared_ptr<const TelemetryView> inner,
        GuardConfig config = {});

    /**
     * Advance the state machine at the start of one control cycle
     * (call once per controller invocation, before any queries). The
     * verdict combines the inner view's staleness at `now` with the
     * rejections recorded since the previous cycle.
     */
    void beginCycle(SimTime now);

    /**
     * Replace the guard's knobs live (the self-tuning loop in
     * core/controllers.cpp applies AdaptiveGuardTuner decisions through
     * here). The new config is validated like at construction; the
     * history depth `outlierHistory` is structural (per-series rings
     * are sized by it) and must not change. Per-series memory and the
     * state machine carry over — retuning adjusts thresholds, it does
     * not forget what the guard has learned.
     * @throws ErmsError on an invalid config or a changed history depth.
     */
    void retune(const GuardConfig &updated);

    /**
     * Export guard internals as first-class telemetry: per-series-kind
     * rejection counters (`erms_guard_rejections_total` labelled by
     * series kind and reason), a state-transition counter per edge plus
     * a total (`erms_guard_transitions_total`), and gauges for the
     * current mode and lifetime fallback residency
     * (`erms_guard_mode`, `erms_guard_fallback_residency`). All series
     * register eagerly here (registration order is irrelevant —
     * snapshots sort by name/labels); recording is off-path until bound,
     * so unbound guards behave byte-identically to before this hook
     * existed. The registry must outlive the guard.
     */
    void bindMetrics(MetricsRegistry &registry);

    GuardMode mode() const { return mode_; }
    const GuardStats &stats() const { return stats_; }
    const GuardConfig &config() const { return config_; }

    // --- TelemetryView --------------------------------------------------

    double observedRate(ServiceId service) const override;
    Interference clusterInterference() const override;
    double serviceP95Ms(ServiceId service) const override;
    double microserviceTailMs(MicroserviceId ms) const override;
    int containerCount(MicroserviceId ms) const override;
    double stalenessMs(SimTime now) const override;

  private:
    /** Per-series guard memory: accepted-value ring + last good. */
    struct SeriesGuard
    {
        std::vector<double> history; ///< ring of accepted values
        std::size_t next = 0;
        bool hasLastGood = false;
        double lastGood = 0.0;
    };

    /** Series key: query kind disambiguator + entity id. */
    using SeriesKey = std::pair<int, std::uint64_t>;

    /** Validate one observation; returns the accepted value or the
     *  series' last known good (0 when none exists yet). The outlier
     *  gate is skipped for series whose honest dynamics are step
     *  changes (container counts). */
    double guardValue(SeriesKey key, double x, double max_bound,
                      bool outlier_gate = true) const;

    /** Reasons a value can be doctored (metric label + counter index). */
    enum class RejectReason
    {
        Bounds = 0,
        Outlier = 1,
        Clamp = 2,
    };

    /** Registered metric handles (null until bindMetrics). */
    struct BoundMetrics;

    /** Record one rejection into the bound registry (no-op unbound). */
    void recordReject(int kind, RejectReason reason) const;

    mutable std::map<SeriesKey, SeriesGuard> series_;
    mutable GuardStats stats_;
    mutable std::uint64_t cycleRejects_ = 0;

    std::shared_ptr<const TelemetryView> inner_;
    GuardConfig config_;
    GuardMode mode_ = GuardMode::Normal;
    int badStreak_ = 0;   ///< consecutive bad cycles in SUSPECT
    int cleanStreak_ = 0; ///< consecutive clean cycles in FALLBACK
    std::shared_ptr<BoundMetrics> metrics_; ///< null when unbound
};

} // namespace erms::telemetry

#endif // ERMS_TELEMETRY_GUARDED_VIEW_HPP
