#include "exporters.hpp"

#include <charconv>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "common/error.hpp"

namespace erms::telemetry {

namespace {

/** Shortest exactly-round-tripping decimal form of a double.
 *  Non-finite values use the explicit spellings NaN / Infinity /
 *  -Infinity (parsed back by strtod): strict JSON has no non-finite
 *  literals, so like Python's json module we deviate loudly rather
 *  than silently emitting an unreadable document. */
std::string
formatDouble(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0.0 ? "Infinity" : "-Infinity";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*g",
                  std::numeric_limits<double>::max_digits10, v);
    return buf;
}

/** Inverse of formatDouble; rejects loudly on any trailing garbage so
 *  a corrupted export surfaces as an assertion, not a half-parsed 0. */
double
parseDouble(const std::string &s)
{
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    ERMS_ASSERT_MSG(!s.empty() && end == s.c_str() + s.size(),
                    "unparseable double in telemetry export");
    return v;
}

std::uint64_t
parseU64(const std::string &s)
{
    return std::strtoull(s.c_str(), nullptr, 10);
}

std::string
kindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter:
        return "counter";
      case MetricKind::Gauge:
        return "gauge";
      case MetricKind::Histogram:
        return "histogram";
    }
    return "counter";
}

MetricKind
kindFromName(const std::string &name)
{
    if (name == "gauge")
        return MetricKind::Gauge;
    if (name == "histogram")
        return MetricKind::Histogram;
    ERMS_ASSERT_MSG(name == "counter", "unknown metric kind");
    return MetricKind::Counter;
}

std::string
labelsToString(const Labels &labels)
{
    std::string out;
    for (std::size_t i = 0; i < labels.size(); ++i) {
        if (i > 0)
            out += ';';
        out += labels[i].first;
        out += '=';
        out += labels[i].second;
    }
    return out;
}

Labels
labelsFromString(const std::string &s)
{
    Labels labels;
    std::size_t pos = 0;
    while (pos < s.size()) {
        std::size_t end = s.find(';', pos);
        if (end == std::string::npos)
            end = s.size();
        const std::string pair = s.substr(pos, end - pos);
        const std::size_t eq = pair.find('=');
        ERMS_ASSERT_MSG(eq != std::string::npos, "malformed label pair");
        labels.emplace_back(pair.substr(0, eq), pair.substr(eq + 1));
        pos = end + 1;
    }
    return labels;
}

template <typename T, typename Fmt>
std::string
joinSeries(const std::vector<T> &values, Fmt fmt, char sep = '|')
{
    std::string out;
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i > 0)
            out += sep;
        out += fmt(values[i]);
    }
    return out;
}

std::vector<std::string>
splitOn(const std::string &s, char sep)
{
    std::vector<std::string> parts;
    if (s.empty())
        return parts;
    std::size_t pos = 0;
    while (true) {
        const std::size_t end = s.find(sep, pos);
        if (end == std::string::npos) {
            parts.push_back(s.substr(pos));
            break;
        }
        parts.push_back(s.substr(pos, end - pos));
        pos = end + 1;
    }
    return parts;
}

} // namespace

// ---------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------

std::string
toCsv(const std::vector<TelemetrySnapshot> &snapshots)
{
    std::string out =
        "at_us,name,labels,kind,counter,gauge,count,sum,boundaries,buckets\n";
    for (const TelemetrySnapshot &snap : snapshots) {
        if (snap.series.empty()) {
            // Marker row (empty name — no real series has one) so a
            // scrape that captured zero series survives the round trip
            // instead of silently vanishing from the stream.
            out += std::to_string(snap.at);
            out += ",,,counter,0,0,0,0,,\n";
            continue;
        }
        for (const SeriesSnapshot &s : snap.series) {
            out += std::to_string(snap.at);
            out += ',';
            out += s.name;
            out += ',';
            out += labelsToString(s.labels);
            out += ',';
            out += kindName(s.kind);
            out += ',';
            out += std::to_string(s.counterValue);
            out += ',';
            out += formatDouble(s.gaugeValue);
            out += ',';
            out += std::to_string(s.count);
            out += ',';
            out += formatDouble(s.sum);
            out += ',';
            out += joinSeries(s.boundaries, formatDouble);
            out += ',';
            out += joinSeries(s.bucketCounts, [](std::uint64_t v) {
                return std::to_string(v);
            });
            out += '\n';
        }
    }
    return out;
}

std::vector<TelemetrySnapshot>
fromCsv(const std::string &csv)
{
    std::vector<TelemetrySnapshot> snapshots;
    std::istringstream in(csv);
    std::string line;
    bool header = true;
    while (std::getline(in, line)) {
        if (header) {
            header = false;
            continue;
        }
        if (line.empty())
            continue;
        const auto fields = splitOn(line, ',');
        ERMS_ASSERT_MSG(fields.size() == 10, "malformed telemetry CSV row");
        const SimTime at = parseU64(fields[0]);
        if (snapshots.empty() || snapshots.back().at != at) {
            TelemetrySnapshot snap;
            snap.at = at;
            snapshots.push_back(std::move(snap));
        }
        if (fields[1].empty())
            continue; // empty-snapshot marker row: scrape, no series
        SeriesSnapshot s;
        s.name = fields[1];
        s.labels = labelsFromString(fields[2]);
        s.kind = kindFromName(fields[3]);
        s.counterValue = parseU64(fields[4]);
        s.gaugeValue = parseDouble(fields[5]);
        s.count = parseU64(fields[6]);
        s.sum = parseDouble(fields[7]);
        for (const std::string &b : splitOn(fields[8], '|'))
            s.boundaries.push_back(parseDouble(b));
        for (const std::string &b : splitOn(fields[9], '|'))
            s.bucketCounts.push_back(parseU64(b));
        snapshots.back().series.push_back(std::move(s));
    }
    return snapshots;
}

// ---------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------

std::string
toJson(const std::vector<TelemetrySnapshot> &snapshots)
{
    std::string out = "[\n";
    for (std::size_t i = 0; i < snapshots.size(); ++i) {
        const TelemetrySnapshot &snap = snapshots[i];
        out += "  {\"at_us\": " + std::to_string(snap.at) +
               ", \"series\": [\n";
        for (std::size_t j = 0; j < snap.series.size(); ++j) {
            const SeriesSnapshot &s = snap.series[j];
            out += "    {\"name\": \"" + s.name + "\", \"labels\": \"" +
                   labelsToString(s.labels) + "\", \"kind\": \"" +
                   kindName(s.kind) + "\"";
            switch (s.kind) {
              case MetricKind::Counter:
                out += ", \"value\": " + std::to_string(s.counterValue);
                break;
              case MetricKind::Gauge:
                out += ", \"value\": " + formatDouble(s.gaugeValue);
                break;
              case MetricKind::Histogram:
                out += ", \"count\": " + std::to_string(s.count) +
                       ", \"sum\": " + formatDouble(s.sum) +
                       ", \"boundaries\": [" +
                       joinSeries(s.boundaries, formatDouble, ',') +
                       "], \"buckets\": [" +
                       joinSeries(s.bucketCounts,
                                  [](std::uint64_t v) {
                                      return std::to_string(v);
                                  },
                                  ',') +
                       "]";
                break;
            }
            out += j + 1 < snap.series.size() ? "},\n" : "}\n";
        }
        out += i + 1 < snapshots.size() ? "  ]},\n" : "  ]}\n";
    }
    out += "]\n";
    return out;
}

namespace {

/**
 * Minimal tokenizer for the subset of JSON toJson() emits. It scans
 * key/value pairs without building a DOM; robust only for documents
 * this module produced (which is all the round-trip contract claims).
 */
struct JsonScanner
{
    const std::string &text;
    std::size_t pos = 0;

    explicit JsonScanner(const std::string &t) : text(t) {}

    bool
    seek(const std::string &token)
    {
        const std::size_t found = text.find(token, pos);
        if (found == std::string::npos)
            return false;
        pos = found + token.size();
        return true;
    }

    /** Next position of token, without consuming. */
    std::size_t
    peek(const std::string &token) const
    {
        return text.find(token, pos);
    }

    std::string
    readUntil(const std::string &stop)
    {
        const std::size_t end = text.find(stop, pos);
        ERMS_ASSERT_MSG(end != std::string::npos, "truncated JSON");
        std::string out = text.substr(pos, end - pos);
        pos = end + stop.size();
        return out;
    }
};

} // namespace

std::vector<TelemetrySnapshot>
fromJson(const std::string &json)
{
    std::vector<TelemetrySnapshot> snapshots;
    JsonScanner scan(json);
    while (true) {
        const std::size_t next_snap = scan.peek("\"at_us\": ");
        if (next_snap == std::string::npos)
            break;
        scan.seek("\"at_us\": ");
        TelemetrySnapshot snap;
        snap.at = parseU64(scan.readUntil(","));

        // Series objects continue until the closing "]}" of this scrape.
        while (true) {
            const std::size_t next_series = scan.peek("{\"name\": \"");
            const std::size_t end_snap = scan.peek("]}");
            if (next_series == std::string::npos ||
                (end_snap != std::string::npos && end_snap < next_series))
                break;
            scan.seek("{\"name\": \"");
            SeriesSnapshot s;
            s.name = scan.readUntil("\"");
            scan.seek("\"labels\": \"");
            s.labels = labelsFromString(scan.readUntil("\""));
            scan.seek("\"kind\": \"");
            s.kind = kindFromName(scan.readUntil("\""));
            switch (s.kind) {
              case MetricKind::Counter:
                scan.seek("\"value\": ");
                s.counterValue = parseU64(scan.readUntil("}"));
                break;
              case MetricKind::Gauge:
                scan.seek("\"value\": ");
                s.gaugeValue = parseDouble(scan.readUntil("}"));
                break;
              case MetricKind::Histogram: {
                scan.seek("\"count\": ");
                s.count = parseU64(scan.readUntil(","));
                scan.seek("\"sum\": ");
                s.sum = parseDouble(scan.readUntil(","));
                scan.seek("\"boundaries\": [");
                for (const std::string &b :
                     splitOn(scan.readUntil("]"), ','))
                    s.boundaries.push_back(parseDouble(b));
                scan.seek("\"buckets\": [");
                for (const std::string &b :
                     splitOn(scan.readUntil("]"), ','))
                    s.bucketCounts.push_back(parseU64(b));
                break;
              }
            }
            snap.series.push_back(std::move(s));
        }
        snapshots.push_back(std::move(snap));
    }
    return snapshots;
}

} // namespace erms::telemetry
