/**
 * @file
 * TelemetryView — the observation interface the closed-loop controllers
 * consume. The scraped implementation answers every query from the
 * monitor's snapshot history (interval-sampled, span-sampled, stale by
 * up to one scrape interval plus the span sampling error), reproducing
 * the information model the paper's runtime actually operates under:
 * §5's monitoring loop decides scaling from scraped Prometheus/Jaeger
 * state, not from ground truth.
 *
 * Controllers accept an optional TelemetryView; passing none — or
 * setting the ERMS_TELEMETRY_ORACLE environment variable to a truthy
 * value — keeps the original oracle reads (Simulation::observedRate,
 * clusterInterference, per-minute metrics), byte-identical to the
 * pre-telemetry code path.
 *
 * The query math lives in SnapshotTelemetryView, which answers every
 * TelemetryView question from an abstract snapshot stream. Decorators
 * that perturb the stream (FaultyTelemetryView in src/fault) reuse the
 * exact same math over their own visibleSnapshots(), so an injected
 * observability fault changes only what the controller *sees*, never
 * how the seen data is interpreted.
 */

#ifndef ERMS_TELEMETRY_VIEW_HPP
#define ERMS_TELEMETRY_VIEW_HPP

#include "model/interference.hpp"
#include "telemetry/monitor.hpp"

namespace erms::telemetry {

/**
 * Read-only observation surface for controllers. All answers reflect
 * the most recent scrape(s), not the current instant.
 */
class TelemetryView
{
  public:
    virtual ~TelemetryView() = default;

    /** Observed arrival rate of a service (requests/minute); 0 until
     *  enough scrapes exist to form a rate. */
    virtual double observedRate(ServiceId service) const = 0;

    /** Cluster-average interference, averaged over host gauges of the
     *  latest scrape. */
    virtual Interference clusterInterference() const = 0;

    /** Estimated P95 end-to-end latency of a service over the latest
     *  scrape interval (ms); 0 when no sampled spans landed in it. */
    virtual double serviceP95Ms(ServiceId service) const = 0;

    /** Estimated P95 latency of one microservice over the latest
     *  scrape interval (ms); 0 when unobserved. */
    virtual double microserviceTailMs(MicroserviceId ms) const = 0;

    /** Container-count gauge of a microservice at the latest scrape;
     *  -1 when the series does not exist yet. */
    virtual int containerCount(MicroserviceId ms) const = 0;

    /** Age of the newest scrape relative to `now` (ms); returns a huge
     *  value when no scrape happened yet. */
    virtual double stalenessMs(SimTime now) const = 0;
};

/** True when ERMS_TELEMETRY_ORACLE requests the oracle escape hatch
 *  (set and not "0"/"false"/""). */
bool oracleTelemetryRequested();

/**
 * TelemetryView answered from a time-ascending snapshot stream. Rates
 * and interval quantiles are computed from the difference between the
 * two newest snapshots (Prometheus `rate()`/`histogram_quantile()` over
 * one scrape window); gauges come from the newest snapshot alone.
 *
 * Robustness of the delta math (these situations cannot arise from a
 * healthy SimMonitor, but a perturbed stream produces all of them):
 *  - counter/bucket regressions between snapshots clamp to a zero
 *    delta, the way Prometheus `rate()` treats counter resets;
 *  - a snapshot pair with non-increasing timestamps yields rate 0;
 *  - histogram series with missing or mismatched bucket layouts fall
 *    back to the newest snapshot's cumulative counts.
 */
class SnapshotTelemetryView : public TelemetryView
{
  public:
    double observedRate(ServiceId service) const override;
    Interference clusterInterference() const override;
    double serviceP95Ms(ServiceId service) const override;
    double microserviceTailMs(MicroserviceId ms) const override;
    int containerCount(MicroserviceId ms) const override;
    double stalenessMs(SimTime now) const override;

  protected:
    /** The snapshot stream queries are answered from (time-ascending;
     *  may be empty). The reference must stay valid until the next
     *  visibleSnapshots() call. */
    virtual const std::vector<TelemetrySnapshot> &visibleSnapshots()
        const = 0;

  private:
    /** Newest snapshot, or nullptr before the first scrape. */
    const TelemetrySnapshot *latest() const;
    /** Second-newest snapshot, or nullptr. */
    const TelemetrySnapshot *previous() const;

    double histogramDeltaQuantile(const std::string &name,
                                  const Labels &labels, double q) const;
};

/**
 * TelemetryView over a SimMonitor's scrape history: the undisturbed
 * observability pipeline (every scrape lands, on time, unmodified).
 */
class ScrapedTelemetryView : public SnapshotTelemetryView
{
  public:
    /** The monitor must outlive the view. */
    explicit ScrapedTelemetryView(const SimMonitor &monitor);

  protected:
    const std::vector<TelemetrySnapshot> &visibleSnapshots() const override
    {
        return monitor_->snapshots();
    }

  private:
    const SimMonitor *monitor_;
};

} // namespace erms::telemetry

#endif // ERMS_TELEMETRY_VIEW_HPP
