#include "view.hpp"

#include <cstdlib>
#include <cstring>
#include <limits>

namespace erms::telemetry {

bool
oracleTelemetryRequested()
{
    const char *value = std::getenv("ERMS_TELEMETRY_ORACLE");
    if (value == nullptr || *value == '\0')
        return false;
    return std::strcmp(value, "0") != 0 &&
           std::strcmp(value, "false") != 0;
}

ScrapedTelemetryView::ScrapedTelemetryView(const SimMonitor &monitor)
    : monitor_(&monitor)
{
}

const TelemetrySnapshot *
SnapshotTelemetryView::latest() const
{
    const auto &snaps = visibleSnapshots();
    return snaps.empty() ? nullptr : &snaps.back();
}

const TelemetrySnapshot *
SnapshotTelemetryView::previous() const
{
    const auto &snaps = visibleSnapshots();
    return snaps.size() < 2 ? nullptr : &snaps[snaps.size() - 2];
}

double
SnapshotTelemetryView::observedRate(ServiceId service) const
{
    const auto &snaps = visibleSnapshots();
    const TelemetrySnapshot *now =
        snaps.empty() ? nullptr : &snaps.back();
    const TelemetrySnapshot *prev =
        snaps.size() < 2 ? nullptr : &snaps[snaps.size() - 2];
    if (now == nullptr || prev == nullptr || now->at <= prev->at)
        return 0.0;
    const Labels labels{{"service", std::to_string(service)}};
    const SeriesSnapshot *cur_s = now->find("erms_requests_total", labels);
    if (cur_s == nullptr)
        return 0.0;
    const SeriesSnapshot *prev_s =
        prev->find("erms_requests_total", labels);
    const std::uint64_t before = prev_s ? prev_s->counterValue : 0;
    if (cur_s->counterValue <= before)
        return 0.0; // no arrivals, or a counter regression (reset)
    const double window_min =
        toMillis(now->at - prev->at) / (60.0 * 1000.0);
    return static_cast<double>(cur_s->counterValue - before) / window_min;
}

Interference
SnapshotTelemetryView::clusterInterference() const
{
    Interference avg;
    const TelemetrySnapshot *now = latest();
    if (now == nullptr)
        return avg;
    double cpu = 0.0, mem = 0.0;
    std::size_t hosts = 0;
    for (const SeriesSnapshot &s : now->series) {
        if (s.name == "erms_host_cpu_util") {
            cpu += s.gaugeValue;
            ++hosts;
        } else if (s.name == "erms_host_mem_util") {
            mem += s.gaugeValue;
        }
    }
    if (hosts == 0)
        return avg;
    avg.cpuUtil = cpu / static_cast<double>(hosts);
    avg.memUtil = mem / static_cast<double>(hosts);
    return avg;
}

double
SnapshotTelemetryView::histogramDeltaQuantile(const std::string &name,
                                              const Labels &labels,
                                              double q) const
{
    const auto &snaps = visibleSnapshots();
    const TelemetrySnapshot *now =
        snaps.empty() ? nullptr : &snaps.back();
    if (now == nullptr)
        return 0.0;
    const SeriesSnapshot *cur_s = now->find(name, labels);
    if (cur_s == nullptr || cur_s->bucketCounts.empty() ||
        cur_s->boundaries.empty() ||
        cur_s->bucketCounts.size() != cur_s->boundaries.size() + 1)
        return 0.0;
    std::vector<std::uint64_t> delta = cur_s->bucketCounts;
    const TelemetrySnapshot *prev =
        snaps.size() < 2 ? nullptr : &snaps[snaps.size() - 2];
    if (prev != nullptr) {
        const SeriesSnapshot *prev_s = prev->find(name, labels);
        if (prev_s != nullptr &&
            prev_s->bucketCounts.size() == delta.size()) {
            // Clamp bucket regressions to an empty delta instead of
            // letting the subtraction wrap: a perturbed pipeline can
            // report fewer cumulative observations than the previous
            // scrape (partial scrape, restarted exporter), and a wrapped
            // uint64 would turn into an astronomically heavy bucket.
            for (std::size_t i = 0; i < delta.size(); ++i)
                delta[i] -= std::min(delta[i], prev_s->bucketCounts[i]);
        }
    }
    return histogramQuantile(cur_s->boundaries, delta, q);
}

double
SnapshotTelemetryView::serviceP95Ms(ServiceId service) const
{
    return histogramDeltaQuantile(
        "erms_request_latency_ms",
        {{"service", std::to_string(service)}}, 0.95);
}

double
SnapshotTelemetryView::microserviceTailMs(MicroserviceId ms) const
{
    return histogramDeltaQuantile(
        "erms_ms_latency_ms",
        {{"microservice", std::to_string(ms)}}, 0.95);
}

int
SnapshotTelemetryView::containerCount(MicroserviceId ms) const
{
    const TelemetrySnapshot *now = latest();
    if (now == nullptr)
        return -1;
    const SeriesSnapshot *s = now->find(
        "erms_containers", {{"microservice", std::to_string(ms)}});
    if (s == nullptr)
        return -1;
    return static_cast<int>(s->gaugeValue);
}

double
SnapshotTelemetryView::stalenessMs(SimTime now) const
{
    const TelemetrySnapshot *snap = latest();
    if (snap == nullptr)
        return std::numeric_limits<double>::max();
    return snap->at >= now ? 0.0 : toMillis(now - snap->at);
}

} // namespace erms::telemetry
