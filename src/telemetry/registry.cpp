#include "registry.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <functional>
#include <thread>

#include "common/error.hpp"

namespace erms::telemetry {

// ---------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------

namespace {

/** Stable per-thread shard index (hashed once per thread). */
std::size_t
threadShard()
{
    static thread_local const std::size_t shard =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) %
        Counter::kShards;
    return shard;
}

} // namespace

void
Counter::add(std::uint64_t n)
{
    shards_[threadShard()].value.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t
Counter::value() const
{
    std::uint64_t total = 0;
    for (const Shard &shard : shards_)
        total += shard.value.load(std::memory_order_relaxed);
    return total;
}

// ---------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------

std::uint64_t
Gauge::pack(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

double
Gauge::unpack(std::uint64_t bits)
{
    return std::bit_cast<double>(bits);
}

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

Histogram::Histogram(std::vector<double> boundaries)
    : boundaries_(std::move(boundaries))
{
    ERMS_ASSERT_MSG(!boundaries_.empty(), "histogram needs >= 1 boundary");
    ERMS_ASSERT_MSG(
        std::is_sorted(boundaries_.begin(), boundaries_.end()) &&
            std::adjacent_find(boundaries_.begin(), boundaries_.end()) ==
                boundaries_.end(),
        "histogram boundaries must be strictly ascending");
    for (std::size_t i = 0; i < boundaries_.size() + 1; ++i)
        buckets_.emplace_back(0);
}

void
Histogram::observe(double x)
{
    // Non-finite observations (a corrupt span) land in the +inf
    // overflow bucket — NaN compares false against every boundary, so
    // lower_bound would otherwise file it under the *smallest* bucket —
    // and are excluded from the sum, which one NaN/Inf would poison
    // permanently (cumulative sums never forget).
    if (!std::isfinite(x)) {
        buckets_.back().fetch_add(1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    const auto it =
        std::lower_bound(boundaries_.begin(), boundaries_.end(), x);
    const std::size_t bucket =
        static_cast<std::size_t>(it - boundaries_.begin());
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // CAS-add onto the packed double sum (atomic<double>::fetch_add is
    // C++20 but spotty across standard libraries).
    std::uint64_t expected = sumBits_.load(std::memory_order_relaxed);
    for (;;) {
        const double current = std::bit_cast<double>(expected);
        const std::uint64_t desired =
            std::bit_cast<std::uint64_t>(current + x);
        if (sumBits_.compare_exchange_weak(expected, desired,
                                           std::memory_order_relaxed))
            break;
    }
}

std::uint64_t
Histogram::count() const
{
    return count_.load(std::memory_order_relaxed);
}

double
Histogram::sum() const
{
    return std::bit_cast<double>(sumBits_.load(std::memory_order_relaxed));
}

std::vector<std::uint64_t>
Histogram::bucketCounts() const
{
    std::vector<std::uint64_t> counts;
    counts.reserve(buckets_.size());
    for (const auto &bucket : buckets_)
        counts.push_back(bucket.load(std::memory_order_relaxed));
    return counts;
}

double
Histogram::quantile(double q) const
{
    return histogramQuantile(boundaries_, bucketCounts(), q);
}

void
Histogram::merge(const Histogram &other)
{
    ERMS_ASSERT_MSG(boundaries_ == other.boundaries_,
                    "histogram merge requires identical boundaries");
    const auto other_counts = other.bucketCounts();
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i].fetch_add(other_counts[i], std::memory_order_relaxed);
    count_.fetch_add(other.count(), std::memory_order_relaxed);
    const double other_sum = other.sum();
    std::uint64_t expected = sumBits_.load(std::memory_order_relaxed);
    for (;;) {
        const double current = std::bit_cast<double>(expected);
        const std::uint64_t desired =
            std::bit_cast<std::uint64_t>(current + other_sum);
        if (sumBits_.compare_exchange_weak(expected, desired,
                                           std::memory_order_relaxed))
            break;
    }
}

double
histogramQuantile(const std::vector<double> &boundaries,
                  const std::vector<std::uint64_t> &bucket_counts,
                  double q)
{
    // Degenerate inputs answer "no estimate" (0) instead of reading
    // boundaries.back() of an empty ladder or propagating a NaN rank —
    // perturbed snapshot streams can surface both.
    if (boundaries.empty() || !(q >= 0.0 && q <= 1.0))
        return 0.0;
    ERMS_ASSERT(bucket_counts.size() == boundaries.size() + 1);
    std::uint64_t total = 0;
    for (std::uint64_t c : bucket_counts)
        total += c;
    if (total == 0)
        return 0.0;

    const double rank = q * static_cast<double>(total);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < bucket_counts.size(); ++i) {
        cumulative += bucket_counts[i];
        if (static_cast<double>(cumulative) < rank)
            continue;
        if (i == boundaries.size()) {
            // +inf bucket: the last finite boundary is the best bound.
            return boundaries.back();
        }
        const double hi = boundaries[i];
        const double lo = i == 0 ? 0.0 : boundaries[i - 1];
        const std::uint64_t in_bucket = bucket_counts[i];
        if (in_bucket == 0)
            return hi;
        const double below =
            static_cast<double>(cumulative - in_bucket);
        const double frac =
            (rank - below) / static_cast<double>(in_bucket);
        return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    return boundaries.back();
}

std::vector<double>
defaultLatencyBucketsMs()
{
    // 1-2-5 ladder from sub-millisecond queueing to multi-second
    // pathologies; matches the resolution Prometheus setups typically
    // configure for request latency.
    return {0.5,  1.0,  2.0,   5.0,   10.0,  20.0,  35.0,  50.0,
            75.0, 100.0, 150.0, 200.0, 300.0, 500.0, 750.0, 1000.0,
            1500.0, 2000.0, 3000.0, 5000.0, 10000.0};
}

// ---------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------

namespace {

/** Bit-pattern double equality: NaN == NaN (same payload), so snapshot
 *  comparison — and the exporter round-trip tests built on it — stay
 *  meaningful for series that captured non-finite values. */
bool
sameBits(double a, double b)
{
    return std::bit_cast<std::uint64_t>(a) ==
           std::bit_cast<std::uint64_t>(b);
}

bool
sameBits(const std::vector<double> &a, const std::vector<double> &b)
{
    return a.size() == b.size() &&
           std::equal(a.begin(), a.end(), b.begin(),
                      [](double x, double y) { return sameBits(x, y); });
}

} // namespace

bool
SeriesSnapshot::operator==(const SeriesSnapshot &other) const
{
    return name == other.name && labels == other.labels &&
           kind == other.kind && counterValue == other.counterValue &&
           sameBits(gaugeValue, other.gaugeValue) &&
           count == other.count && sameBits(sum, other.sum) &&
           sameBits(boundaries, other.boundaries) &&
           bucketCounts == other.bucketCounts;
}

const SeriesSnapshot *
TelemetrySnapshot::find(const std::string &name, const Labels &labels) const
{
    for (const SeriesSnapshot &s : series) {
        if (s.name == name && s.labels == labels)
            return &s;
    }
    return nullptr;
}

bool
TelemetrySnapshot::operator==(const TelemetrySnapshot &other) const
{
    return at == other.at && series == other.series;
}

// ---------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------

MetricsRegistry::Entry &
MetricsRegistry::findOrCreate(const std::string &name, const Labels &labels,
                              MetricKind kind)
{
    Labels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    const auto key = std::make_pair(name, sorted);
    auto it = index_.find(key);
    if (it != index_.end()) {
        ERMS_ASSERT_MSG(it->second->kind == kind,
                        "metric re-registered with a different kind");
        return *it->second;
    }
    entries_.emplace_back();
    Entry &entry = entries_.back();
    entry.name = name;
    entry.labels = std::move(sorted);
    entry.kind = kind;
    index_.emplace(key, &entry);
    return entry;
}

Counter &
MetricsRegistry::counter(const std::string &name, const Labels &labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Entry &entry = findOrCreate(name, labels, MetricKind::Counter);
    if (!entry.counter)
        entry.counter = std::make_unique<Counter>();
    return *entry.counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name, const Labels &labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Entry &entry = findOrCreate(name, labels, MetricKind::Gauge);
    if (!entry.gauge)
        entry.gauge = std::make_unique<Gauge>();
    return *entry.gauge;
}

Histogram &
MetricsRegistry::histogram(const std::string &name, const Labels &labels,
                           const std::vector<double> &boundaries)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Entry &entry = findOrCreate(name, labels, MetricKind::Histogram);
    if (!entry.histogram) {
        entry.histogram = std::make_unique<Histogram>(boundaries);
    } else {
        ERMS_ASSERT_MSG(entry.histogram->boundaries() == boundaries,
                        "histogram re-registered with other boundaries");
    }
    return *entry.histogram;
}

std::size_t
MetricsRegistry::seriesCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

TelemetrySnapshot
MetricsRegistry::snapshot(SimTime at) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    TelemetrySnapshot snap;
    snap.at = at;
    snap.series.reserve(entries_.size());
    // index_ is an ordered map over (name, labels): iteration yields the
    // deterministic export order regardless of registration order.
    for (const auto &[key, entry] : index_) {
        SeriesSnapshot s;
        s.name = entry->name;
        s.labels = entry->labels;
        s.kind = entry->kind;
        switch (entry->kind) {
          case MetricKind::Counter:
            s.counterValue = entry->counter->value();
            break;
          case MetricKind::Gauge:
            s.gaugeValue = entry->gauge->value();
            break;
          case MetricKind::Histogram:
            s.count = entry->histogram->count();
            s.sum = entry->histogram->sum();
            s.boundaries = entry->histogram->boundaries();
            s.bucketCounts = entry->histogram->bucketCounts();
            break;
        }
        snap.series.push_back(std::move(s));
    }
    return snap;
}

} // namespace erms::telemetry
