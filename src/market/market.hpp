/**
 * @file
 * TenantMarket — the per-epoch orchestration of the multi-tenant
 * resource market (docs/market.md): true demands go in, each tenant's
 * policy turns them into declarations, the allocator settles credits
 * and emits per-tenant caps, and running integrals (allocated, useful,
 * true, declared units) accumulate for the long-term fairness and
 * welfare metrics of bench_tenant_market.
 *
 * The market is pure integer arithmetic over its inputs — no RNG, no
 * floating point — so a market trajectory is bit-reproducible and a
 * controller wrapped by makeMarketController stays byte-identical to
 * the unwrapped controller whenever the caps never bind.
 */

#ifndef ERMS_MARKET_MARKET_HPP
#define ERMS_MARKET_MARKET_HPP

#include <memory>
#include <vector>

#include "market/allocator.hpp"
#include "market/tenant_policy.hpp"

namespace erms::market {

/** Running per-tenant accounting across epochs. */
struct TenantAccount
{
    /** Σ caps — resources allocated (hoarded units included). */
    std::int64_t allocatedIntegral = 0;
    /** Σ min(cap, trueDemand) — resources the tenant could use. */
    std::int64_t usefulIntegral = 0;
    /** Σ trueDemand. */
    std::int64_t trueIntegral = 0;
    /** Σ declared. */
    std::int64_t declaredIntegral = 0;
};

/** Outcome of one market epoch. */
struct MarketEpoch
{
    std::vector<Units> trueDemand;
    std::vector<Units> declared;
    /** Per-tenant caps (== allocation.caps, kept for convenience). */
    std::vector<Units> caps;
    EpochAllocation allocation;
};

/** The market: capacity + allocator + one policy per tenant. */
class TenantMarket
{
  public:
    TenantMarket(Units capacity,
                 std::unique_ptr<MarketAllocator> allocator,
                 std::vector<std::unique_ptr<TenantPolicy>> policies);

    std::size_t tenantCount() const { return policies_.size(); }
    Units capacity() const { return capacity_; }
    int epochsRun() const { return epochs_; }

    const MarketAllocator &allocator() const { return *allocator_; }
    /** Credit ledger, when the allocator keeps one (else null). */
    const CreditLedger *ledger() const { return allocator_->ledger(); }
    const TenantPolicy &policy(TenantId tenant) const;

    /** Run one allocation epoch over the tenants' true demands. */
    MarketEpoch runEpoch(const std::vector<Units> &true_demand);

    /** The most recent epoch (asserts at least one epoch has run);
     *  how callers that hand runEpoch's result to a controller — e.g.
     *  makeMarketController — still read the caps just applied. */
    const MarketEpoch &lastEpoch() const;

    const std::vector<TenantAccount> &accounts() const { return accounts_; }

    /** Σ over epochs of min(capacity, Σ_i trueDemand_i) — the demand
     *  the cluster could have served; utilization denominator. */
    std::int64_t servableIntegral() const { return servableIntegral_; }
    /** Σ idle capacity across epochs. */
    std::int64_t idleIntegral() const { return idleIntegral_; }
    /** Σ credit-financed borrowed units across epochs. */
    std::int64_t borrowedIntegral() const { return borrowedIntegral_; }

  private:
    Units capacity_;
    std::unique_ptr<MarketAllocator> allocator_;
    std::vector<std::unique_ptr<TenantPolicy>> policies_;
    std::vector<TenantAccount> accounts_;
    MarketEpoch lastEpoch_;
    int epochs_ = 0;
    std::int64_t servableIntegral_ = 0;
    std::int64_t idleIntegral_ = 0;
    std::int64_t borrowedIntegral_ = 0;
};

} // namespace erms::market

#endif // ERMS_MARKET_MARKET_HPP
