#include "credit_ledger.hpp"

#include <numeric>

#include "common/error.hpp"

namespace erms::market {

CreditLedger::CreditLedger(std::size_t tenant_count,
                           CreditLedgerConfig config)
    : config_(config),
      balances_(tenant_count, config.initialCredits)
{
    ERMS_ASSERT(tenant_count > 0);
    ERMS_ASSERT(config.initialCredits >= config.creditFloor);
}

Credits
CreditLedger::balance(TenantId tenant) const
{
    ERMS_ASSERT(tenant < balances_.size());
    return balances_[tenant];
}

Credits
CreditLedger::spendable(TenantId tenant) const
{
    return balance(tenant) - config_.creditFloor;
}

void
CreditLedger::donate(TenantId tenant, Credits amount)
{
    ERMS_ASSERT(tenant < balances_.size());
    ERMS_ASSERT(amount >= 0);
    balances_[tenant] += amount;
}

Credits
CreditLedger::borrow(TenantId tenant, Credits amount)
{
    ERMS_ASSERT(tenant < balances_.size());
    ERMS_ASSERT(amount >= 0);
    const Credits debit = std::min(amount, spendable(tenant));
    balances_[tenant] -= debit;
    return debit;
}

Credits
CreditLedger::totalBalance() const
{
    return std::accumulate(balances_.begin(), balances_.end(),
                           static_cast<Credits>(0));
}

Credits
CreditLedger::totalEndowment() const
{
    return static_cast<Credits>(balances_.size()) * config_.initialCredits;
}

} // namespace erms::market
