/**
 * @file
 * Per-tenant credit accounting for the multi-tenant resource market
 * (docs/market.md). Credits are the long-term fairness currency of the
 * Karma mechanism (arXiv 2305.17222): a tenant that declares less than
 * its fair share *donates* the slack and earns one credit per donated
 * unit another tenant actually uses; a tenant that wants more than its
 * fair share *borrows* donated units by spending credits, one per unit.
 *
 * Balances are integers (one credit == one resource unit for one
 * epoch), so credit conservation is exact: across any number of epochs
 * the sum of all balance deltas is zero — every credit a borrower pays
 * is earned by some donor. The property suite pins this with no
 * floating-point slack.
 */

#ifndef ERMS_MARKET_CREDIT_LEDGER_HPP
#define ERMS_MARKET_CREDIT_LEDGER_HPP

#include <cstdint>
#include <vector>

namespace erms::market {

/** Identifier of a tenant (dense, 0-based). */
using TenantId = std::uint32_t;

/** Resource units (container slots for one allocation epoch). */
using Units = std::int64_t;

/** Credit amount (1 credit buys 1 borrowed unit for 1 epoch). */
using Credits = std::int64_t;

/** Knobs of the ledger. */
struct CreditLedgerConfig
{
    /** Endowment every tenant starts with. A small endowment lets a
     *  tenant borrow before it has ever donated (cold-start liquidity);
     *  a large one weakens the strategy-proofness penalty, since
     *  overclaiming is bankrolled for longer. */
    Credits initialCredits = 0;
    /** Balances are never debited below this floor (0 = credits must
     *  be earned before they can be spent; negative values permit an
     *  overdraft of |creditFloor| units). */
    Credits creditFloor = 0;
};

/** Per-tenant credit balances with donate/borrow semantics. */
class CreditLedger
{
  public:
    CreditLedger(std::size_t tenant_count, CreditLedgerConfig config = {});

    std::size_t tenantCount() const { return balances_.size(); }
    const CreditLedgerConfig &config() const { return config_; }

    /** Current balance (may sit at the floor, never below). */
    Credits balance(TenantId tenant) const;

    /** Credits the tenant can still spend: balance - creditFloor. */
    Credits spendable(TenantId tenant) const;

    /** Earn credits for donated units another tenant borrowed. */
    void donate(TenantId tenant, Credits amount);

    /**
     * Spend up to `amount` credits for borrowed units, clamped at the
     * floor. @return the amount actually debited (<= amount).
     */
    Credits borrow(TenantId tenant, Credits amount);

    /** Sum of all balances (== tenantCount * initialCredits whenever
     *  every paid credit was matched by an earned one). */
    Credits totalBalance() const;

    /** Sum of the initial endowments, the conservation baseline. */
    Credits totalEndowment() const;

  private:
    CreditLedgerConfig config_;
    std::vector<Credits> balances_;
};

} // namespace erms::market

#endif // ERMS_MARKET_CREDIT_LEDGER_HPP
