#include "allocator.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/error.hpp"

namespace erms::market {

namespace {

Units
sum(const std::vector<Units> &values)
{
    return std::accumulate(values.begin(), values.end(),
                           static_cast<Units>(0));
}

void
checkDemands(const std::vector<Units> &declared, Units capacity)
{
    ERMS_ASSERT(!declared.empty());
    ERMS_ASSERT(capacity >= 0);
    for (Units d : declared)
        ERMS_ASSERT(d >= 0);
}

} // namespace

std::vector<Units>
equalShares(Units capacity, std::size_t tenants)
{
    ERMS_ASSERT(capacity >= 0 && tenants > 0);
    const Units n = static_cast<Units>(tenants);
    std::vector<Units> shares(tenants, capacity / n);
    const Units remainder = capacity % n;
    for (Units i = 0; i < remainder; ++i)
        ++shares[static_cast<std::size_t>(i)];
    return shares;
}

std::vector<Units>
waterFill(const std::vector<Units> &demand, Units capacity)
{
    checkDemands(demand, capacity);
    std::vector<Units> alloc(demand.size(), 0);

    std::vector<std::size_t> order;
    for (std::size_t i = 0; i < demand.size(); ++i)
        if (demand[i] > 0)
            order.push_back(i);
    std::sort(order.begin(), order.end(),
              [&demand](std::size_t a, std::size_t b) {
                  return demand[a] != demand[b] ? demand[a] < demand[b]
                                                : a < b;
              });

    Units remaining = capacity;
    for (std::size_t k = 0; k < order.size() && remaining > 0; ++k) {
        const Units active = static_cast<Units>(order.size() - k);
        const Units share = remaining / active;
        const std::size_t i = order[k];
        if (demand[i] <= share) {
            // Fully satisfiable at the current level: grant and raise
            // the water level for everyone still unsatisfied.
            alloc[i] = demand[i];
            remaining -= demand[i];
            continue;
        }
        // Everyone left is capped at the level; the integer remainder
        // goes one unit each to the lowest ids (all of them demand more
        // than `share`, so level + 1 never exceeds a demand).
        std::vector<std::size_t> capped(order.begin() +
                                            static_cast<std::ptrdiff_t>(k),
                                        order.end());
        std::sort(capped.begin(), capped.end());
        const Units extra = remaining - share * active;
        for (std::size_t j = 0; j < capped.size(); ++j)
            alloc[capped[j]] =
                share + (static_cast<Units>(j) < extra ? 1 : 0);
        remaining = 0;
    }
    return alloc;
}

std::vector<Units>
proportionalSplit(const std::vector<Units> &weights, Units total)
{
    ERMS_ASSERT(total >= 0);
    std::vector<Units> parts(weights.size(), 0);
    if (total == 0)
        return parts;
    const Units weight_sum = sum(weights);
    ERMS_ASSERT(weight_sum > 0);

    // Floor parts via 128-bit intermediates; the numerator remainders
    // decide who receives the leftover units (largest first, ties to
    // the lowest id), so the parts always sum to `total` exactly.
    std::vector<__int128> remainders(weights.size(), 0);
    Units assigned = 0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        ERMS_ASSERT(weights[i] >= 0);
        const __int128 numer =
            static_cast<__int128>(total) * static_cast<__int128>(weights[i]);
        parts[i] = static_cast<Units>(numer / weight_sum);
        remainders[i] = numer - static_cast<__int128>(parts[i]) * weight_sum;
        assigned += parts[i];
    }
    Units leftover = total - assigned;
    std::vector<std::size_t> order(weights.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&remainders](std::size_t a, std::size_t b) {
                  return remainders[a] != remainders[b]
                             ? remainders[a] > remainders[b]
                             : a < b;
              });
    for (std::size_t k = 0; leftover > 0; ++k, --leftover)
        ++parts[order[k]];
    return parts;
}

EpochAllocation
MaxMinAllocator::allocate(const std::vector<Units> &declared, Units capacity)
{
    checkDemands(declared, capacity);
    EpochAllocation out;
    out.caps = waterFill(declared, capacity);
    out.idle = capacity - sum(out.caps);
    return out;
}

KarmaAllocator::KarmaAllocator(std::size_t tenant_count, KarmaConfig config)
    : config_(config),
      ledger_(tenant_count,
              CreditLedgerConfig{config.initialCredits, config.creditFloor})
{
}

EpochAllocation
KarmaAllocator::allocate(const std::vector<Units> &declared, Units capacity)
{
    const std::size_t n = ledger_.tenantCount();
    ERMS_ASSERT(declared.size() == n);
    checkDemands(declared, capacity);

    EpochAllocation out;
    const std::vector<Units> fair = equalShares(capacity, n);
    out.caps.assign(n, 0);
    std::vector<Units> want(n, 0);
    std::vector<Units> donation(n, 0);
    Units pool = 0;
    for (std::size_t i = 0; i < n; ++i) {
        out.caps[i] = std::min(declared[i], fair[i]);
        donation[i] = fair[i] - out.caps[i];
        want[i] = std::max<Units>(0, declared[i] - fair[i]);
        pool += donation[i];
    }
    out.donated = pool;

    // Credit-priced borrowing, richest first (ties to the lowest id):
    // each batch keeps the pick the richest eligible borrower, so a
    // tenant that borrows heavily drains its balance and cedes priority
    // — the Karma incentive. Batches are bounded by the gap to the
    // runner-up's balance, so the loop settles in O(n) picks per
    // distinct balance level instead of unit by unit.
    while (pool > 0) {
        std::size_t best = n;
        Credits best_balance = 0;
        Credits runner_up = std::numeric_limits<Credits>::min();
        for (std::size_t i = 0; i < n; ++i) {
            if (want[i] <= 0 || ledger_.spendable(
                                    static_cast<TenantId>(i)) <= 0)
                continue;
            const Credits bal = ledger_.balance(static_cast<TenantId>(i));
            if (best == n) {
                best = i;
                best_balance = bal;
            } else if (bal > best_balance) {
                runner_up = best_balance;
                best_balance = bal;
                best = i;
            } else {
                runner_up = std::max(runner_up, bal);
            }
        }
        if (best == n)
            break; // nobody left who both wants and can pay

        const TenantId tenant = static_cast<TenantId>(best);
        Units batch = std::min({want[best], pool,
                                static_cast<Units>(
                                    ledger_.spendable(tenant))});
        if (runner_up != std::numeric_limits<Credits>::min())
            batch = std::min(
                batch, std::max<Units>(1, static_cast<Units>(
                                              best_balance - runner_up) +
                                              1));
        const Credits paid = ledger_.borrow(tenant, batch);
        ERMS_ASSERT(paid == batch);
        want[best] -= batch;
        out.caps[best] += batch;
        out.borrowed += batch;
        pool -= batch;
    }

    // Settle the donors: one credit per donated-and-borrowed unit,
    // split in proportion to the donations (exact, largest-remainder),
    // so paid and earned credits cancel and the ledger conserves.
    if (out.borrowed > 0) {
        const std::vector<Units> earned =
            proportionalSplit(donation, out.borrowed);
        for (std::size_t i = 0; i < n; ++i)
            if (earned[i] > 0)
                ledger_.donate(static_cast<TenantId>(i), earned[i]);
    }

    if (config_.workConserving && pool > 0) {
        // Unpriced work-conserving pass: max-min the leftover donated
        // units over the residual wants (see KarmaConfig for the
        // strategy-proofness trade).
        const std::vector<Units> free_units = waterFill(want, pool);
        for (std::size_t i = 0; i < n; ++i) {
            out.caps[i] += free_units[i];
            out.freeRemainder += free_units[i];
        }
        pool -= out.freeRemainder;
    }
    out.idle = pool;
    return out;
}

} // namespace erms::market
