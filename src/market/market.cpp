#include "market.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace erms::market {

TenantMarket::TenantMarket(
    Units capacity, std::unique_ptr<MarketAllocator> allocator,
    std::vector<std::unique_ptr<TenantPolicy>> policies)
    : capacity_(capacity),
      allocator_(std::move(allocator)),
      policies_(std::move(policies)),
      accounts_(policies_.size())
{
    ERMS_ASSERT(capacity_ >= 0);
    ERMS_ASSERT(allocator_ != nullptr);
    ERMS_ASSERT(!policies_.empty());
    for (const auto &policy : policies_)
        ERMS_ASSERT(policy != nullptr);
    const CreditLedger *ledger = allocator_->ledger();
    ERMS_ASSERT(ledger == nullptr ||
                ledger->tenantCount() == policies_.size());
}

const TenantPolicy &
TenantMarket::policy(TenantId tenant) const
{
    ERMS_ASSERT(tenant < policies_.size());
    return *policies_[tenant];
}

MarketEpoch
TenantMarket::runEpoch(const std::vector<Units> &true_demand)
{
    const std::size_t n = policies_.size();
    ERMS_ASSERT(true_demand.size() == n);

    MarketEpoch epoch;
    epoch.trueDemand = true_demand;
    epoch.declared.resize(n);

    const std::vector<Units> fair = equalShares(capacity_, n);
    const CreditLedger *ledger = allocator_->ledger();
    for (std::size_t i = 0; i < n; ++i) {
        ERMS_ASSERT(true_demand[i] >= 0);
        PolicyContext context;
        context.epoch = epochs_;
        context.trueDemand = true_demand[i];
        context.fairShare = fair[i];
        if (ledger != nullptr) {
            context.balance = ledger->balance(static_cast<TenantId>(i));
            context.spendable =
                ledger->spendable(static_cast<TenantId>(i));
        }
        epoch.declared[i] = policies_[i]->declare(context);
        ERMS_ASSERT(epoch.declared[i] >= 0);
    }

    epoch.allocation = allocator_->allocate(epoch.declared, capacity_);
    epoch.caps = epoch.allocation.caps;

    Units true_total = 0;
    for (std::size_t i = 0; i < n; ++i) {
        accounts_[i].allocatedIntegral += epoch.caps[i];
        accounts_[i].usefulIntegral +=
            std::min(epoch.caps[i], true_demand[i]);
        accounts_[i].trueIntegral += true_demand[i];
        accounts_[i].declaredIntegral += epoch.declared[i];
        true_total += true_demand[i];
    }
    servableIntegral_ += std::min(capacity_, true_total);
    idleIntegral_ += epoch.allocation.idle;
    borrowedIntegral_ += epoch.allocation.borrowed;
    ++epochs_;
    lastEpoch_ = epoch;
    return epoch;
}

const MarketEpoch &
TenantMarket::lastEpoch() const
{
    ERMS_ASSERT(epochs_ > 0);
    return lastEpoch_;
}

} // namespace erms::market
