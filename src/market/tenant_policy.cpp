#include "tenant_policy.hpp"

#include <cmath>

#include "common/error.hpp"

namespace erms::market {

namespace {

/** ceil(demand * factor) in exact integer arithmetic for the factors
 *  policies use (factor >= 1). */
Units
inflate(Units demand, double factor)
{
    ERMS_ASSERT(factor >= 1.0);
    return static_cast<Units>(
        std::ceil(static_cast<double>(demand) * factor));
}

class HonestPolicy final : public TenantPolicy
{
  public:
    std::string name() const override { return "honest"; }
    TenantKind kind() const override { return TenantKind::Honest; }

    Units
    declare(const PolicyContext &context) override
    {
        return context.trueDemand;
    }
};

class GreedyPolicy final : public TenantPolicy
{
  public:
    explicit GreedyPolicy(double factor) : factor_(factor) {}

    std::string name() const override { return "greedy"; }
    TenantKind kind() const override { return TenantKind::Greedy; }

    Units
    declare(const PolicyContext &context) override
    {
        // Inflated demand, floored at the fair share: a hoarder never
        // donates, even when its true demand is low.
        return std::max(inflate(context.trueDemand, factor_),
                        context.fairShare);
    }

  private:
    double factor_;
};

class AdaptivePolicy final : public TenantPolicy
{
  public:
    AdaptivePolicy(double factor, Credits reserve)
        : factor_(factor), reserve_(reserve)
    {
    }

    std::string name() const override { return "adaptive"; }
    TenantKind kind() const override { return TenantKind::Adaptive; }

    Units
    declare(const PolicyContext &context) override
    {
        // Rich: exploit. Broke: declare honestly (donating troughs) to
        // rebuild the balance before the next exploitation phase.
        if (context.spendable > reserve_)
            return std::max(inflate(context.trueDemand, factor_),
                            context.fairShare);
        return context.trueDemand;
    }

  private:
    double factor_;
    Credits reserve_;
};

} // namespace

std::unique_ptr<TenantPolicy>
makeHonestPolicy()
{
    return std::make_unique<HonestPolicy>();
}

std::unique_ptr<TenantPolicy>
makeGreedyPolicy(double overclaim_factor)
{
    return std::make_unique<GreedyPolicy>(overclaim_factor);
}

std::unique_ptr<TenantPolicy>
makeAdaptivePolicy(double overclaim_factor, Credits credit_reserve)
{
    return std::make_unique<AdaptivePolicy>(overclaim_factor,
                                            credit_reserve);
}

std::unique_ptr<TenantPolicy>
makeTenantPolicy(TenantKind kind)
{
    switch (kind) {
    case TenantKind::Honest:
        return makeHonestPolicy();
    case TenantKind::Greedy:
        return makeGreedyPolicy();
    case TenantKind::Adaptive:
        return makeAdaptivePolicy();
    }
    ERMS_ASSERT(false);
    return nullptr;
}

} // namespace erms::market
