/**
 * @file
 * Epoch allocators of the multi-tenant resource market (docs/market.md):
 * tenants declare demand in integer resource units (container slots),
 * the allocator splits the cluster capacity into per-tenant caps.
 *
 *  - MaxMinAllocator: classic work-conserving max-min water-fill over
 *    the *declarations*. Utilization-optimal but not strategy-proof —
 *    a tenant that overclaims raises its own cap at honest tenants'
 *    expense (the gap the differential test pins).
 *  - KarmaAllocator (after arXiv 2305.17222): every tenant owns an
 *    equal fair share per epoch; declaring below it donates the slack,
 *    declaring above it borrows donated units by spending credits, and
 *    donated-and-borrowed units earn their donors credits. Borrowing
 *    priority is richest-first, so long-term heavy borrowers drain
 *    their balance and lose priority — overclaiming cannot raise a
 *    tenant's long-term allocation integral.
 *
 * All arithmetic is integer (largest-remainder rounding, fixed
 * tie-breaks by tenant id), so a market trajectory is bit-reproducible
 * and the invariants the property suite checks are exact.
 */

#ifndef ERMS_MARKET_ALLOCATOR_HPP
#define ERMS_MARKET_ALLOCATOR_HPP

#include <string>
#include <vector>

#include "market/credit_ledger.hpp"

namespace erms::market {

/** Outcome of one allocation epoch. */
struct EpochAllocation
{
    /** Per-tenant resource cap; never exceeds the declaration, and the
     *  caps sum to at most the capacity. */
    std::vector<Units> caps;
    /** Units offered below fair shares (declared-below-fair slack). */
    Units donated = 0;
    /** Donated units bought with credits this epoch. */
    Units borrowed = 0;
    /** Donated units handed out unpriced by the work-conserving pass
     *  (always 0 under strict Karma and under max-min). */
    Units freeRemainder = 0;
    /** Capacity left unallocated this epoch. */
    Units idle = 0;
};

/** Abstract epoch allocator. */
class MarketAllocator
{
  public:
    virtual ~MarketAllocator() = default;

    virtual std::string name() const = 0;

    /** Split `capacity` among the declared demands (one per tenant). */
    virtual EpochAllocation allocate(const std::vector<Units> &declared,
                                     Units capacity) = 0;

    /** The credit ledger, for allocators that keep one (else null). */
    virtual const CreditLedger *ledger() const { return nullptr; }
};

/**
 * Equal split of `capacity` into `tenants` integer fair shares; the
 * remainder goes to the lowest tenant ids (largest-remainder with equal
 * weights, deterministic).
 */
std::vector<Units> equalShares(Units capacity, std::size_t tenants);

/**
 * Work-conserving integer max-min water-fill: raise every tenant's
 * allocation toward its demand at an equal level until demand or
 * capacity is exhausted; integer remainders go to the lowest ids among
 * the still-unsatisfied. Never leaves capacity idle while any demand is
 * unmet.
 */
std::vector<Units> waterFill(const std::vector<Units> &demand,
                             Units capacity);

/**
 * Split `total` in proportion to `weights` (largest-remainder, ties to
 * the lowest id); the parts sum to `total` exactly. weights must sum
 * to a positive value when total > 0.
 */
std::vector<Units> proportionalSplit(const std::vector<Units> &weights,
                                     Units total);

/** Naive dynamic max-min fairness over declarations (no credits). */
class MaxMinAllocator : public MarketAllocator
{
  public:
    std::string name() const override { return "max-min"; }

    EpochAllocation allocate(const std::vector<Units> &declared,
                             Units capacity) override;
};

/** Knobs of the Karma mechanism. */
struct KarmaConfig
{
    /** Per-tenant credit endowment (see CreditLedgerConfig). */
    Credits initialCredits = 0;
    /** Debit floor of the ledger (0 = no overdraft). */
    Credits creditFloor = 0;
    /**
     * Hand leftover donated units to still-capped tenants for free
     * (max-min over the residual wants) once no eligible borrower can
     * pay. Keeps the market unconditionally Pareto-efficient at the
     * cost of strict strategy-proofness: a broke overclaimer can hoard
     * freebies again. Off = strict Karma, where idle capacity can
     * remain only when every capped tenant is out of credits.
     */
    bool workConserving = false;
};

/** Credit-based Karma allocator; owns the tenants' credit ledger. */
class KarmaAllocator : public MarketAllocator
{
  public:
    KarmaAllocator(std::size_t tenant_count, KarmaConfig config = {});

    std::string name() const override { return "karma"; }

    EpochAllocation allocate(const std::vector<Units> &declared,
                             Units capacity) override;

    const CreditLedger *ledger() const override { return &ledger_; }
    const KarmaConfig &config() const { return config_; }

  private:
    KarmaConfig config_;
    CreditLedger ledger_;
};

} // namespace erms::market

#endif // ERMS_MARKET_ALLOCATOR_HPP
