/**
 * @file
 * Tenant declaration policies for the resource market (docs/market.md):
 * given a tenant's *true* per-epoch demand (derived from the diurnal
 * generators in src/workload, or from the containers a controller wants
 * to deploy), a policy decides what the tenant *declares* to the
 * allocator.
 *
 *  - honest: declares the true demand;
 *  - greedy-overclaim: inflates the true demand by a factor and never
 *    declares below its fair share (it would rather hoard than donate);
 *  - adaptive/strategic: overclaims while its credit balance is above a
 *    reserve, then plays honest to rebuild credits — the cleverest
 *    misreporter the strategy-proofness battery checks against.
 */

#ifndef ERMS_MARKET_TENANT_POLICY_HPP
#define ERMS_MARKET_TENANT_POLICY_HPP

#include <memory>
#include <string>

#include "market/credit_ledger.hpp"

namespace erms::market {

/** Kinds of declaration behaviour. */
enum class TenantKind
{
    Honest,
    Greedy,
    Adaptive,
};

/** What a policy sees when declaring for one epoch. */
struct PolicyContext
{
    /** Epoch index (0-based allocation round). */
    int epoch = 0;
    /** The tenant's true demand this epoch (units). */
    Units trueDemand = 0;
    /** The tenant's fair share of this epoch's capacity (units). */
    Units fairShare = 0;
    /** Current credit balance (0 for credit-less allocators). */
    Credits balance = 0;
    /** Spendable credits (balance minus the ledger floor). */
    Credits spendable = 0;
};

/** A tenant's declaration strategy. */
class TenantPolicy
{
  public:
    virtual ~TenantPolicy() = default;

    virtual std::string name() const = 0;
    virtual TenantKind kind() const = 0;

    /** Demand the tenant declares to the allocator this epoch. */
    virtual Units declare(const PolicyContext &context) = 0;
};

/** Truthful declarations. */
std::unique_ptr<TenantPolicy> makeHonestPolicy();

/**
 * Greedy overclaimer: declares
 * max(ceil(trueDemand * overclaim_factor), fairShare) — inflated
 * demand, and never a donation.
 */
std::unique_ptr<TenantPolicy>
makeGreedyPolicy(double overclaim_factor = 3.0);

/**
 * Strategic overclaimer: greedy while spendable credits exceed
 * `credit_reserve`, honest otherwise (earn, then exploit).
 */
std::unique_ptr<TenantPolicy>
makeAdaptivePolicy(double overclaim_factor = 3.0,
                   Credits credit_reserve = 0);

/** Factory by kind with the default knobs above. */
std::unique_ptr<TenantPolicy> makeTenantPolicy(TenantKind kind);

} // namespace erms::market

#endif // ERMS_MARKET_TENANT_POLICY_HPP
