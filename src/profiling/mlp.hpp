/**
 * @file
 * Small multilayer perceptron — the from-scratch stand-in for the
 * "three-layer Neural Network with 64 neurons" baseline of Fig. 10.
 * Two hidden ReLU layers trained with Adam on standardized features.
 */

#ifndef ERMS_PROFILING_MLP_HPP
#define ERMS_PROFILING_MLP_HPP

#include <cstdint>
#include <vector>

#include "profiling/sample.hpp"

namespace erms {

/** Hyperparameters of the MLP baseline. */
struct MlpConfig
{
    int hiddenSize = 64;
    int epochs = 200;
    double learningRate = 1e-3;
    int batchSize = 32;
    std::uint64_t seed = 17;
};

/** Feed-forward latency regressor over (gamma, C, M). */
class MlpRegressor
{
  public:
    explicit MlpRegressor(MlpConfig config = {});

    void fit(const std::vector<ProfilingSample> &samples);

    double predict(const ProfilingSample &sample) const;
    std::vector<double>
    predictAll(const std::vector<ProfilingSample> &samples) const;

  private:
    static constexpr int kInputs = 3;

    std::vector<double> featurize(const ProfilingSample &sample) const;
    double forward(const std::vector<double> &input) const;

    MlpConfig config_;
    // Standardization statistics.
    std::vector<double> mean_, stddev_;
    double yMean_ = 0.0, yStd_ = 1.0;
    // Parameters: two hidden layers + linear output.
    std::vector<double> w1_, b1_, w2_, b2_, w3_;
    double b3_ = 0.0;
};

} // namespace erms

#endif // ERMS_PROFILING_MLP_HPP
