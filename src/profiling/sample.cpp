#include "sample.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace erms {

double
profilingAccuracy(const std::vector<double> &predicted,
                  const std::vector<double> &actual)
{
    ERMS_ASSERT(predicted.size() == actual.size());
    if (predicted.empty())
        return 0.0;
    double error_sum = 0.0;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
        const double denom = std::max(std::fabs(actual[i]), 1e-9);
        const double rel = std::fabs(predicted[i] - actual[i]) / denom;
        error_sum += std::min(rel, 1.0);
    }
    return 1.0 - error_sum / static_cast<double>(predicted.size());
}

double
fractionWithin(const std::vector<double> &predicted,
               const std::vector<double> &actual, double tolerance)
{
    ERMS_ASSERT(predicted.size() == actual.size());
    if (predicted.empty())
        return 0.0;
    std::size_t hits = 0;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
        const double denom = std::max(std::fabs(actual[i]), 1e-9);
        if (std::fabs(predicted[i] - actual[i]) / denom <= tolerance)
            ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(predicted.size());
}

void
splitSamples(const std::vector<ProfilingSample> &all, double fraction,
             std::vector<ProfilingSample> &train,
             std::vector<ProfilingSample> &test)
{
    ERMS_ASSERT(fraction > 0.0 && fraction < 1.0);
    const std::size_t cut = static_cast<std::size_t>(
        fraction * static_cast<double>(all.size()));
    train.assign(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(cut));
    test.assign(all.begin() + static_cast<std::ptrdiff_t>(cut), all.end());
}

} // namespace erms
