#include "piecewise_fit.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/error.hpp"
#include "common/linalg.hpp"

namespace erms {

namespace {

/** OLS of latency on [C*gamma, M*gamma, gamma, 1] -> IntervalParams. */
IntervalParams
fitInterval(const std::vector<const ProfilingSample *> &samples)
{
    std::vector<double> x;
    std::vector<double> y;
    x.reserve(samples.size() * 4);
    y.reserve(samples.size());
    for (const ProfilingSample *s : samples) {
        x.push_back(s->cpuUtil * s->gamma);
        x.push_back(s->memUtil * s->gamma);
        x.push_back(s->gamma);
        x.push_back(1.0);
        y.push_back(s->latencyMs);
    }
    // Latency must not decrease with workload anywhere in the operating
    // range. Fit with an active-set non-negativity scheme on the slope
    // coefficients (alpha, beta, c): whenever the unconstrained fit
    // yields a negative coefficient, clamp the most negative one to zero
    // and refit on the remaining features. (Dropping interference
    // coupling wholesale instead invites Simpson's-paradox flat fits
    // when interference and workload are anti-correlated in the data.)
    bool active[3] = {true, true, true}; // C*gamma, M*gamma, gamma
    IntervalParams params;
    for (int round = 0; round < 4; ++round) {
        std::vector<std::size_t> features;
        for (std::size_t f = 0; f < 3; ++f) {
            if (active[f])
                features.push_back(f);
        }
        const std::size_t cols = features.size() + 1;
        std::vector<double> x;
        std::vector<double> y;
        x.reserve(samples.size() * cols);
        y.reserve(samples.size());
        for (const ProfilingSample *s : samples) {
            const double raw[3] = {s->cpuUtil * s->gamma,
                                   s->memUtil * s->gamma, s->gamma};
            for (std::size_t f : features)
                x.push_back(raw[f]);
            x.push_back(1.0);
            y.push_back(s->latencyMs);
        }
        const auto w = leastSquares(x, y, cols, 1e-6);
        double coeff[3] = {0.0, 0.0, 0.0};
        for (std::size_t k = 0; k < features.size(); ++k)
            coeff[features[k]] = w[k];
        params.alpha = coeff[0];
        params.beta = coeff[1];
        params.c = coeff[2];
        params.b = w[cols - 1];

        // Find the most negative active slope coefficient.
        int worst = -1;
        double worst_value = -1e-12;
        for (int f = 0; f < 3; ++f) {
            if (active[f] && coeff[f] < worst_value) {
                worst_value = coeff[f];
                worst = f;
            }
        }
        if (worst < 0)
            break;
        active[worst] = false;
        params.alpha = params.beta = 0.0;
        params.c = 1e-9; // in case everything gets clamped
    }
    if (params.alpha < 0.0)
        params.alpha = 0.0;
    if (params.beta < 0.0)
        params.beta = 0.0;
    if (params.c < 0.0)
        params.c = 1e-9;
    return params;
}

double
intervalError(const IntervalParams &params, const ProfilingSample &s)
{
    const double pred =
        params.evaluate(s.gamma, Interference{s.cpuUtil, s.memUtil});
    const double err = pred - s.latencyMs;
    return err * err;
}

} // namespace

std::vector<double>
predictAll(const PiecewiseLatencyModel &model,
           const std::vector<ProfilingSample> &samples)
{
    std::vector<double> out;
    out.reserve(samples.size());
    for (const ProfilingSample &s : samples)
        out.push_back(
            model.latency(s.gamma, Interference{s.cpuUtil, s.memUtil}));
    return out;
}

PiecewiseFitResult
fitPiecewiseModel(const std::vector<ProfilingSample> &samples,
                  const PiecewiseFitConfig &config)
{
    ERMS_ASSERT_MSG(samples.size() >= 2 * config.minIntervalSamples,
                    "not enough samples to fit a piecewise model");

    // Initial cutoff: median workload.
    std::vector<double> gammas;
    gammas.reserve(samples.size());
    for (const ProfilingSample &s : samples)
        gammas.push_back(s.gamma);
    std::sort(gammas.begin(), gammas.end());
    double initial_cutoff = gammas[gammas.size() / 2];
    if (initial_cutoff <= 0.0)
        initial_cutoff = 1.0;

    auto tree = std::make_shared<DecisionTreeRegressor>(config.cutoffTree);
    IntervalParams below, above;

    // Degenerate workload coverage: if the observed per-container loads
    // barely vary (a microservice that never approaches its knee during
    // the sweep), a two-interval fit would extrapolate garbage. Fit one
    // line over everything and place the cutoff beyond the observed
    // range so both intervals agree.
    const double g_min = gammas.front();
    const double g_max = gammas.back();
    const bool degenerate_range = g_max < 1.5 * std::max(g_min, 1.0);

    // Current cutoff prediction: tree when trained, constant before.
    const auto cutoff_of = [&](double cpu, double mem) {
        if (tree->trained())
            return std::max(1.0, tree->predict({cpu, mem}));
        return initial_cutoff;
    };

    bool single_interval = degenerate_range;
    for (int iter = 0; iter < config.iterations && !single_interval;
         ++iter) {
        // Step 1: interval assignment under the current cutoff.
        std::vector<const ProfilingSample *> lows, highs;
        for (const ProfilingSample &s : samples) {
            if (s.gamma <= cutoff_of(s.cpuUtil, s.memUtil))
                lows.push_back(&s);
            else
                highs.push_back(&s);
        }
        // Degenerate assignment: fall back to a median split by gamma.
        if (lows.size() < config.minIntervalSamples ||
            highs.size() < config.minIntervalSamples) {
            lows.clear();
            highs.clear();
            const double median = gammas[gammas.size() / 2];
            for (const ProfilingSample &s : samples) {
                if (s.gamma <= median)
                    lows.push_back(&s);
                else
                    highs.push_back(&s);
            }
            if (lows.size() < config.minIntervalSamples ||
                highs.size() < config.minIntervalSamples) {
                single_interval = true;
                break;
            }
        }

        // Step 2: linear fit per interval.
        below = fitInterval(lows);
        above = fitInterval(highs);

        // Step 3: per-interference-bucket optimal split, then tree fit.
        std::map<std::pair<long, long>, std::vector<const ProfilingSample *>>
            buckets;
        for (const ProfilingSample &s : samples) {
            const long cb = std::lround(s.cpuUtil / config.bucketWidth);
            const long mb = std::lround(s.memUtil / config.bucketWidth);
            buckets[{cb, mb}].push_back(&s);
        }

        std::vector<std::vector<double>> tree_x;
        std::vector<double> tree_y;
        std::vector<double> tree_w;
        for (auto &[key, bucket] : buckets) {
            if (bucket.size() < 6)
                continue;
            std::sort(bucket.begin(), bucket.end(),
                      [](const ProfilingSample *a, const ProfilingSample *b) {
                          return a->gamma < b->gamma;
                      });
            // Bucket-local knee search: fit a free line on each side of
            // every candidate split (closed-form 1-D regression via
            // prefix sums) and keep the split minimizing total SSE among
            // candidates where the right side is steeper than the left
            // (a knee, not an arbitrary cut).
            const std::size_t n = bucket.size();
            std::vector<double> sg(n + 1, 0.0), sgg(n + 1, 0.0),
                sl(n + 1, 0.0), sgl(n + 1, 0.0), sll(n + 1, 0.0);
            for (std::size_t i = 0; i < n; ++i) {
                const double g = bucket[i]->gamma;
                const double l = bucket[i]->latencyMs;
                sg[i + 1] = sg[i] + g;
                sgg[i + 1] = sgg[i] + g * g;
                sl[i + 1] = sl[i] + l;
                sgl[i + 1] = sgl[i] + g * l;
                sll[i + 1] = sll[i] + l * l;
            }
            // Regression of L on gamma over [lo, hi): returns
            // {slope, sse}; a degenerate span fits a constant.
            const auto segment = [&](std::size_t lo, std::size_t hi) {
                const double count = static_cast<double>(hi - lo);
                const double sum_g = sg[hi] - sg[lo];
                const double sum_gg = sgg[hi] - sgg[lo];
                const double sum_l = sl[hi] - sl[lo];
                const double sum_gl = sgl[hi] - sgl[lo];
                const double sum_ll = sll[hi] - sll[lo];
                const double var_g = sum_gg - sum_g * sum_g / count;
                double slope = 0.0;
                if (var_g > 1e-9)
                    slope = (sum_gl - sum_g * sum_l / count) / var_g;
                const double intercept =
                    (sum_l - slope * sum_g) / count;
                const double sse = sum_ll - 2.0 * slope * sum_gl -
                                   2.0 * intercept * sum_l +
                                   slope * slope * sum_gg +
                                   2.0 * slope * intercept * sum_g +
                                   intercept * intercept * count;
                return std::pair<double, double>(slope, sse);
            };
            double best_err = std::numeric_limits<double>::infinity();
            double best_split = -1.0;
            for (std::size_t i = 3; i + 3 <= n; ++i) {
                const auto [slope_l, sse_l] = segment(0, i);
                const auto [slope_r, sse_r] = segment(i, n);
                if (slope_r <= slope_l)
                    continue; // not a knee
                const double err = sse_l + sse_r;
                if (err < best_err) {
                    best_err = err;
                    best_split =
                        (bucket[i - 1]->gamma + bucket[i]->gamma) / 2.0;
                }
            }
            if (best_split <= 0.0)
                continue; // no knee visible in this bucket
            double cpu_sum = 0.0, mem_sum = 0.0;
            for (const ProfilingSample *s : bucket) {
                cpu_sum += s->cpuUtil;
                mem_sum += s->memUtil;
            }
            tree_x.push_back({cpu_sum / static_cast<double>(n),
                              mem_sum / static_cast<double>(n)});
            tree_y.push_back(best_split);
            tree_w.push_back(static_cast<double>(n));
        }
        if (tree_x.size() >= 2) {
            // Physical prior: the knee moves *forward* (to lower
            // workloads) as interference grows. Enforce a non-increasing
            // split sequence along total utilization with weighted
            // pool-adjacent-violators before fitting the tree, so noisy
            // buckets cannot invert the ordering.
            std::vector<std::size_t> order(tree_x.size());
            for (std::size_t i = 0; i < order.size(); ++i)
                order[i] = i;
            std::sort(order.begin(), order.end(),
                      [&](std::size_t a, std::size_t b) {
                          return tree_x[a][0] + tree_x[a][1] <
                                 tree_x[b][0] + tree_x[b][1];
                      });
            struct Block
            {
                double value;
                double weight;
                std::size_t count;
            };
            std::vector<Block> blocks;
            for (std::size_t i : order) {
                blocks.push_back({tree_y[i], tree_w[i], 1});
                // Non-increasing: later blocks must not exceed earlier.
                while (blocks.size() >= 2 &&
                       blocks[blocks.size() - 2].value <
                           blocks.back().value) {
                    Block merged = blocks.back();
                    blocks.pop_back();
                    Block &prev = blocks.back();
                    const double total = prev.weight + merged.weight;
                    prev.value = (prev.value * prev.weight +
                                  merged.value * merged.weight) /
                                 total;
                    prev.weight = total;
                    prev.count += merged.count;
                }
            }
            std::size_t cursor = 0;
            for (const Block &block : blocks) {
                for (std::size_t k = 0; k < block.count; ++k)
                    tree_y[order[cursor++]] = block.value;
            }
            tree->fit(tree_x, tree_y, tree_w);
        } else if (!tree_y.empty()) {
            initial_cutoff = tree_y.front();
        }
    }

    if (single_interval) {
        std::vector<const ProfilingSample *> all;
        all.reserve(samples.size());
        for (const ProfilingSample &s : samples)
            all.push_back(&s);
        below = fitInterval(all);
        above = below;
        initial_cutoff = 2.0 * g_max;
        tree = std::make_shared<DecisionTreeRegressor>(config.cutoffTree);
    }

    PiecewiseFitResult result;
    result.below = below;
    result.above = above;
    result.cutoffTree = tree;
    result.cutoffFallback = initial_cutoff;
    const double fallback = initial_cutoff;
    auto shared_tree = tree;
    result.model = PiecewiseLatencyModel(
        below, above, [shared_tree, fallback](const Interference &itf) {
            if (shared_tree->trained()) {
                return std::max(1.0, shared_tree->predict(
                                         {itf.cpuUtil, itf.memUtil}));
            }
            return fallback;
        });

    const auto predictions = predictAll(result.model, samples);
    std::vector<double> actual;
    actual.reserve(samples.size());
    for (const ProfilingSample &s : samples)
        actual.push_back(s.latencyMs);
    result.trainAccuracy = profilingAccuracy(predictions, actual);
    return result;
}

} // namespace erms
