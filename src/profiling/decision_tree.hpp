/**
 * @file
 * CART regression tree (variance-reduction splits). Used in two roles:
 * learning the cutoff sigma as a function of interference (§5.2, citing
 * Quinlan's decision trees) and as the weak learner inside the
 * gradient-boosting baseline.
 */

#ifndef ERMS_PROFILING_DECISION_TREE_HPP
#define ERMS_PROFILING_DECISION_TREE_HPP

#include <cstddef>
#include <vector>

namespace erms {

/** Hyperparameters of a regression tree. */
struct TreeConfig
{
    int maxDepth = 4;
    std::size_t minSamplesLeaf = 3;
};

/** Axis-aligned regression tree over dense feature rows. */
class DecisionTreeRegressor
{
  public:
    explicit DecisionTreeRegressor(TreeConfig config = {});

    /**
     * Fit on row-major features (rows x dims) with optional sample
     * weights (empty = uniform).
     */
    void fit(const std::vector<std::vector<double>> &features,
             const std::vector<double> &targets,
             const std::vector<double> &weights = {});

    double predict(const std::vector<double> &features) const;

    bool trained() const { return !nodes_.empty(); }
    std::size_t nodeCount() const { return nodes_.size(); }

    /** Tree node in index-addressed form (featureIndex -1 = leaf). */
    struct Node
    {
        int featureIndex = -1; ///< -1 for a leaf
        double threshold = 0.0;
        double value = 0.0; ///< leaf prediction
        int left = -1;
        int right = -1;
    };

    /** Flattened nodes for serialization (root at index 0). */
    const std::vector<Node> &nodes() const { return nodes_; }

    /** Restore a tree from flattened nodes (replaces any fit). */
    void restore(std::vector<Node> nodes) { nodes_ = std::move(nodes); }

  private:

    int build(const std::vector<std::vector<double>> &features,
              const std::vector<double> &targets,
              const std::vector<double> &weights,
              std::vector<std::size_t> indices, int depth);

    TreeConfig config_;
    std::vector<Node> nodes_;
};

} // namespace erms

#endif // ERMS_PROFILING_DECISION_TREE_HPP
