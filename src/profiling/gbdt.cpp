#include "gbdt.hpp"

#include "common/error.hpp"

namespace erms {

GbdtRegressor::GbdtRegressor(GbdtConfig config) : config_(config)
{
    ERMS_ASSERT(config.estimators > 0);
    ERMS_ASSERT(config.learningRate > 0.0 && config.learningRate <= 1.0);
}

std::vector<double>
GbdtRegressor::featurize(const ProfilingSample &s)
{
    // Raw features plus the interaction terms the latency model uses.
    return {s.gamma, s.cpuUtil, s.memUtil, s.cpuUtil * s.gamma,
            s.memUtil * s.gamma};
}

void
GbdtRegressor::fit(const std::vector<ProfilingSample> &samples)
{
    ERMS_ASSERT(!samples.empty());
    trees_.clear();

    std::vector<std::vector<double>> features;
    features.reserve(samples.size());
    for (const ProfilingSample &s : samples)
        features.push_back(featurize(s));

    base_ = 0.0;
    for (const ProfilingSample &s : samples)
        base_ += s.latencyMs;
    base_ /= static_cast<double>(samples.size());

    std::vector<double> residual(samples.size());
    std::vector<double> prediction(samples.size(), base_);
    for (int round = 0; round < config_.estimators; ++round) {
        for (std::size_t i = 0; i < samples.size(); ++i)
            residual[i] = samples[i].latencyMs - prediction[i];
        DecisionTreeRegressor tree(config_.tree);
        tree.fit(features, residual);
        for (std::size_t i = 0; i < samples.size(); ++i)
            prediction[i] +=
                config_.learningRate * tree.predict(features[i]);
        trees_.push_back(std::move(tree));
    }
}

double
GbdtRegressor::predict(const ProfilingSample &sample) const
{
    const auto features = featurize(sample);
    double value = base_;
    for (const DecisionTreeRegressor &tree : trees_)
        value += config_.learningRate * tree.predict(features);
    return value;
}

std::vector<double>
GbdtRegressor::predictAll(const std::vector<ProfilingSample> &samples) const
{
    std::vector<double> out;
    out.reserve(samples.size());
    for (const ProfilingSample &s : samples)
        out.push_back(predict(s));
    return out;
}

} // namespace erms
