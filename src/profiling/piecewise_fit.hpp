/**
 * @file
 * Erms' offline profiler (§5.2): fits the piecewise model of Eq. (15) —
 * two interference-coupled linear intervals plus a decision-tree cutoff
 * sigma(C, M) — from per-minute samples.
 *
 * Algorithm (EM-flavored, 3 rounds):
 *  1. initialize the cutoff at the median workload;
 *  2. assign samples to intervals by the current cutoff prediction;
 *  3. fit each interval by least squares on features
 *     [C*gamma, M*gamma, gamma, 1] -> (alpha, beta, c, b);
 *  4. re-learn the cutoff: bucket samples by rounded (C, M); within each
 *     bucket scan candidate split points and keep the one minimizing the
 *     two-model SSE; train a decision tree on (C, M) -> best split
 *     (weighted by bucket size); repeat from 2.
 */

#ifndef ERMS_PROFILING_PIECEWISE_FIT_HPP
#define ERMS_PROFILING_PIECEWISE_FIT_HPP

#include <memory>
#include <vector>

#include "model/latency_model.hpp"
#include "profiling/decision_tree.hpp"
#include "profiling/sample.hpp"

namespace erms {

/** Configuration of the piecewise fitter. */
struct PiecewiseFitConfig
{
    int iterations = 3;
    /** Interference bucket width for cutoff search. */
    double bucketWidth = 0.10;
    /** Minimum samples per interval for a stable linear fit. */
    std::size_t minIntervalSamples = 4;
    TreeConfig cutoffTree{3, 2};
};

/** Fitted result: the model plus training diagnostics. */
struct PiecewiseFitResult
{
    PiecewiseLatencyModel model;
    IntervalParams below;
    IntervalParams above;
    double trainAccuracy = 0.0;
    /** Shared cutoff tree backing model's cutoff function. */
    std::shared_ptr<DecisionTreeRegressor> cutoffTree;
    /** Constant cutoff used when the tree is untrained. */
    double cutoffFallback = 1.0;
};

/** Fit Eq. (15) from samples. Requires at least a handful of samples. */
PiecewiseFitResult fitPiecewiseModel(const std::vector<ProfilingSample> &samples,
                                     const PiecewiseFitConfig &config = {});

/** Predict latency for each sample under a fitted model. */
std::vector<double>
predictAll(const PiecewiseLatencyModel &model,
           const std::vector<ProfilingSample> &samples);

} // namespace erms

#endif // ERMS_PROFILING_PIECEWISE_FIT_HPP
