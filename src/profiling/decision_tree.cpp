#include "decision_tree.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/error.hpp"

namespace erms {

DecisionTreeRegressor::DecisionTreeRegressor(TreeConfig config)
    : config_(config)
{
    ERMS_ASSERT(config.maxDepth >= 0);
    ERMS_ASSERT(config.minSamplesLeaf >= 1);
}

void
DecisionTreeRegressor::fit(const std::vector<std::vector<double>> &features,
                           const std::vector<double> &targets,
                           const std::vector<double> &weights)
{
    ERMS_ASSERT(!features.empty());
    ERMS_ASSERT(features.size() == targets.size());
    ERMS_ASSERT(weights.empty() || weights.size() == targets.size());

    nodes_.clear();
    std::vector<std::size_t> indices(features.size());
    std::iota(indices.begin(), indices.end(), 0);
    std::vector<double> w = weights;
    if (w.empty())
        w.assign(features.size(), 1.0);
    build(features, targets, w, std::move(indices), 0);
}

namespace {

/** Weighted mean of targets over an index subset. */
double
weightedMean(const std::vector<double> &targets,
             const std::vector<double> &weights,
             const std::vector<std::size_t> &indices)
{
    double sum = 0.0, wsum = 0.0;
    for (std::size_t i : indices) {
        sum += weights[i] * targets[i];
        wsum += weights[i];
    }
    return wsum > 0.0 ? sum / wsum : 0.0;
}

} // namespace

int
DecisionTreeRegressor::build(const std::vector<std::vector<double>> &features,
                             const std::vector<double> &targets,
                             const std::vector<double> &weights,
                             std::vector<std::size_t> indices, int depth)
{
    Node node;
    node.value = weightedMean(targets, weights, indices);

    const bool can_split = depth < config_.maxDepth &&
                           indices.size() >= 2 * config_.minSamplesLeaf;
    if (!can_split) {
        nodes_.push_back(node);
        return static_cast<int>(nodes_.size()) - 1;
    }

    const std::size_t dims = features[indices[0]].size();
    double best_score = std::numeric_limits<double>::infinity();
    int best_feature = -1;
    double best_threshold = 0.0;

    // Evaluate every midpoint split on every feature.
    std::vector<std::size_t> sorted = indices;
    for (std::size_t d = 0; d < dims; ++d) {
        std::sort(sorted.begin(), sorted.end(),
                  [&](std::size_t a, std::size_t b) {
                      return features[a][d] < features[b][d];
                  });

        // Prefix sums of w, w*y, w*y^2 enable O(1) split scoring.
        double wl = 0.0, syl = 0.0, syyl = 0.0;
        double wr = 0.0, syr = 0.0, syyr = 0.0;
        for (std::size_t i : sorted) {
            wr += weights[i];
            syr += weights[i] * targets[i];
            syyr += weights[i] * targets[i] * targets[i];
        }
        for (std::size_t k = 0; k + 1 < sorted.size(); ++k) {
            const std::size_t i = sorted[k];
            wl += weights[i];
            syl += weights[i] * targets[i];
            syyl += weights[i] * targets[i] * targets[i];
            wr -= weights[i];
            syr -= weights[i] * targets[i];
            syyr -= weights[i] * targets[i] * targets[i];

            if (k + 1 < config_.minSamplesLeaf ||
                sorted.size() - (k + 1) < config_.minSamplesLeaf)
                continue;
            const double left_val = features[sorted[k]][d];
            const double right_val = features[sorted[k + 1]][d];
            if (left_val == right_val)
                continue;

            // Weighted SSE of both sides.
            const double sse_l = wl > 0.0 ? syyl - syl * syl / wl : 0.0;
            const double sse_r = wr > 0.0 ? syyr - syr * syr / wr : 0.0;
            const double score = sse_l + sse_r;
            if (score < best_score) {
                best_score = score;
                best_feature = static_cast<int>(d);
                best_threshold = (left_val + right_val) / 2.0;
            }
        }
    }

    if (best_feature < 0) {
        nodes_.push_back(node);
        return static_cast<int>(nodes_.size()) - 1;
    }

    std::vector<std::size_t> left_idx, right_idx;
    for (std::size_t i : indices) {
        if (features[i][static_cast<std::size_t>(best_feature)] <=
            best_threshold)
            left_idx.push_back(i);
        else
            right_idx.push_back(i);
    }
    ERMS_ASSERT(!left_idx.empty() && !right_idx.empty());

    node.featureIndex = best_feature;
    node.threshold = best_threshold;
    const int self = static_cast<int>(nodes_.size());
    nodes_.push_back(node);
    const int left = build(features, targets, weights, std::move(left_idx),
                           depth + 1);
    const int right = build(features, targets, weights, std::move(right_idx),
                            depth + 1);
    nodes_[static_cast<std::size_t>(self)].left = left;
    nodes_[static_cast<std::size_t>(self)].right = right;
    return self;
}

double
DecisionTreeRegressor::predict(const std::vector<double> &features) const
{
    ERMS_ASSERT_MSG(trained(), "predict before fit");
    std::size_t index = 0;
    while (true) {
        const Node &node = nodes_[index];
        if (node.featureIndex < 0)
            return node.value;
        const double value =
            features[static_cast<std::size_t>(node.featureIndex)];
        index = static_cast<std::size_t>(value <= node.threshold
                                             ? node.left
                                             : node.right);
    }
}

} // namespace erms
