/**
 * @file
 * Profiling sample type (the paper's d_i^j = (L_i^j, gamma_i^j, C_i^j,
 * M_i^j), §5.2) and accuracy metrics used in Fig. 10.
 */

#ifndef ERMS_PROFILING_SAMPLE_HPP
#define ERMS_PROFILING_SAMPLE_HPP

#include <cstddef>
#include <vector>

namespace erms {

/** One per-minute observation of one microservice. */
struct ProfilingSample
{
    double latencyMs = 0.0; ///< L: tail latency within the minute
    double gamma = 0.0;     ///< workload per container (requests/min)
    double cpuUtil = 0.0;   ///< C: host CPU utilization
    double memUtil = 0.0;   ///< M: host memory utilization
};

/**
 * Profiling accuracy as used in §6.2: 1 - mean relative error, with each
 * per-sample relative error clipped at 100% so single outliers cannot
 * drive accuracy negative.
 */
double profilingAccuracy(const std::vector<double> &predicted,
                         const std::vector<double> &actual);

/** Fraction of predictions within +-tolerance (relative) of the truth. */
double fractionWithin(const std::vector<double> &predicted,
                      const std::vector<double> &actual, double tolerance);

/** Chronological train/test split: first `fraction` for training. */
void splitSamples(const std::vector<ProfilingSample> &all, double fraction,
                  std::vector<ProfilingSample> &train,
                  std::vector<ProfilingSample> &test);

} // namespace erms

#endif // ERMS_PROFILING_SAMPLE_HPP
