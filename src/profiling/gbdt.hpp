/**
 * @file
 * Gradient-boosted regression trees — the from-scratch stand-in for the
 * XGBoost baseline of Fig. 10. Squared-loss boosting over shallow CART
 * trees with shrinkage.
 */

#ifndef ERMS_PROFILING_GBDT_HPP
#define ERMS_PROFILING_GBDT_HPP

#include <vector>

#include "profiling/decision_tree.hpp"
#include "profiling/sample.hpp"

namespace erms {

/** Hyperparameters of the boosted ensemble. */
struct GbdtConfig
{
    int estimators = 120;
    double learningRate = 0.1;
    TreeConfig tree{3, 2};
};

/** Boosted-tree latency regressor over (gamma, C, M) features. */
class GbdtRegressor
{
  public:
    explicit GbdtRegressor(GbdtConfig config = {});

    void fit(const std::vector<ProfilingSample> &samples);

    double predict(const ProfilingSample &sample) const;
    std::vector<double>
    predictAll(const std::vector<ProfilingSample> &samples) const;

  private:
    static std::vector<double> featurize(const ProfilingSample &sample);

    GbdtConfig config_;
    double base_ = 0.0;
    std::vector<DecisionTreeRegressor> trees_;
};

} // namespace erms

#endif // ERMS_PROFILING_GBDT_HPP
