#include "mlp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace erms {

MlpRegressor::MlpRegressor(MlpConfig config) : config_(config)
{
    ERMS_ASSERT(config.hiddenSize > 0 && config.epochs > 0);
}

std::vector<double>
MlpRegressor::featurize(const ProfilingSample &s) const
{
    std::vector<double> x = {s.gamma, s.cpuUtil, s.memUtil};
    for (int i = 0; i < kInputs; ++i)
        x[static_cast<std::size_t>(i)] =
            (x[static_cast<std::size_t>(i)] - mean_[static_cast<std::size_t>(i)]) /
            stddev_[static_cast<std::size_t>(i)];
    return x;
}

void
MlpRegressor::fit(const std::vector<ProfilingSample> &samples)
{
    ERMS_ASSERT(!samples.empty());
    const int h = config_.hiddenSize;
    const std::size_t n = samples.size();
    Rng rng(config_.seed);

    // Standardization.
    mean_.assign(kInputs, 0.0);
    stddev_.assign(kInputs, 0.0);
    for (const ProfilingSample &s : samples) {
        mean_[0] += s.gamma;
        mean_[1] += s.cpuUtil;
        mean_[2] += s.memUtil;
    }
    for (double &m : mean_)
        m /= static_cast<double>(n);
    for (const ProfilingSample &s : samples) {
        const double d0 = s.gamma - mean_[0];
        const double d1 = s.cpuUtil - mean_[1];
        const double d2 = s.memUtil - mean_[2];
        stddev_[0] += d0 * d0;
        stddev_[1] += d1 * d1;
        stddev_[2] += d2 * d2;
    }
    for (double &sd : stddev_)
        sd = std::max(1e-9, std::sqrt(sd / static_cast<double>(n)));

    yMean_ = 0.0;
    for (const ProfilingSample &s : samples)
        yMean_ += s.latencyMs;
    yMean_ /= static_cast<double>(n);
    double yvar = 0.0;
    for (const ProfilingSample &s : samples) {
        const double d = s.latencyMs - yMean_;
        yvar += d * d;
    }
    yStd_ = std::max(1e-9, std::sqrt(yvar / static_cast<double>(n)));

    // He initialization.
    const auto he = [&](int fan_in) {
        return rng.normal() * std::sqrt(2.0 / fan_in);
    };
    const std::size_t hs = static_cast<std::size_t>(h);
    w1_.resize(hs * kInputs);
    b1_.assign(hs, 0.0);
    w2_.resize(hs * hs);
    b2_.assign(hs, 0.0);
    w3_.resize(hs);
    b3_ = 0.0;
    for (double &w : w1_)
        w = he(kInputs);
    for (double &w : w2_)
        w = he(h);
    for (double &w : w3_)
        w = he(h);

    // Adam state for all parameter groups, flattened.
    const std::size_t params = w1_.size() + b1_.size() + w2_.size() +
                               b2_.size() + w3_.size() + 1;
    std::vector<double> m_state(params, 0.0), v_state(params, 0.0);
    const double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
    std::uint64_t step = 0;

    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);

    std::vector<double> g_w1(w1_.size()), g_b1(b1_.size());
    std::vector<double> g_w2(w2_.size()), g_b2(b2_.size());
    std::vector<double> g_w3(w3_.size());
    double g_b3 = 0.0;
    std::vector<double> z1(hs), a1(hs), z2(hs), a2(hs);
    std::vector<double> d1(hs), d2(hs);

    for (int epoch = 0; epoch < config_.epochs; ++epoch) {
        rng.shuffle(order);
        for (std::size_t start = 0; start < n;
             start += static_cast<std::size_t>(config_.batchSize)) {
            const std::size_t end = std::min(
                n, start + static_cast<std::size_t>(config_.batchSize));
            std::fill(g_w1.begin(), g_w1.end(), 0.0);
            std::fill(g_b1.begin(), g_b1.end(), 0.0);
            std::fill(g_w2.begin(), g_w2.end(), 0.0);
            std::fill(g_b2.begin(), g_b2.end(), 0.0);
            std::fill(g_w3.begin(), g_w3.end(), 0.0);
            g_b3 = 0.0;

            for (std::size_t k = start; k < end; ++k) {
                const ProfilingSample &s = samples[order[k]];
                const auto x = featurize(s);
                const double target = (s.latencyMs - yMean_) / yStd_;

                // Forward.
                for (std::size_t j = 0; j < hs; ++j) {
                    double z = b1_[j];
                    for (int i = 0; i < kInputs; ++i)
                        z += w1_[j * kInputs + static_cast<std::size_t>(i)] *
                             x[static_cast<std::size_t>(i)];
                    z1[j] = z;
                    a1[j] = z > 0.0 ? z : 0.0;
                }
                for (std::size_t j = 0; j < hs; ++j) {
                    double z = b2_[j];
                    for (std::size_t i = 0; i < hs; ++i)
                        z += w2_[j * hs + i] * a1[i];
                    z2[j] = z;
                    a2[j] = z > 0.0 ? z : 0.0;
                }
                double out = b3_;
                for (std::size_t j = 0; j < hs; ++j)
                    out += w3_[j] * a2[j];

                // Backward (squared loss).
                const double dout = 2.0 * (out - target);
                g_b3 += dout;
                for (std::size_t j = 0; j < hs; ++j) {
                    g_w3[j] += dout * a2[j];
                    d2[j] = z2[j] > 0.0 ? dout * w3_[j] : 0.0;
                }
                for (std::size_t j = 0; j < hs; ++j) {
                    g_b2[j] += d2[j];
                    for (std::size_t i = 0; i < hs; ++i)
                        g_w2[j * hs + i] += d2[j] * a1[i];
                }
                for (std::size_t i = 0; i < hs; ++i) {
                    double acc = 0.0;
                    for (std::size_t j = 0; j < hs; ++j)
                        acc += d2[j] * w2_[j * hs + i];
                    d1[i] = z1[i] > 0.0 ? acc : 0.0;
                }
                for (std::size_t j = 0; j < hs; ++j) {
                    g_b1[j] += d1[j];
                    for (int i = 0; i < kInputs; ++i)
                        g_w1[j * kInputs + static_cast<std::size_t>(i)] +=
                            d1[j] * x[static_cast<std::size_t>(i)];
                }
            }

            // Adam update over the flattened parameter vector.
            ++step;
            const double batch = static_cast<double>(end - start);
            const double bc1 =
                1.0 - std::pow(beta1, static_cast<double>(step));
            const double bc2 =
                1.0 - std::pow(beta2, static_cast<double>(step));
            std::size_t p = 0;
            const auto adam = [&](double *param, const double *grad,
                                  std::size_t count) {
                for (std::size_t i = 0; i < count; ++i, ++p) {
                    const double g = grad[i] / batch;
                    m_state[p] = beta1 * m_state[p] + (1.0 - beta1) * g;
                    v_state[p] = beta2 * v_state[p] + (1.0 - beta2) * g * g;
                    const double mhat = m_state[p] / bc1;
                    const double vhat = v_state[p] / bc2;
                    param[i] -= config_.learningRate * mhat /
                                (std::sqrt(vhat) + eps);
                }
            };
            adam(w1_.data(), g_w1.data(), w1_.size());
            adam(b1_.data(), g_b1.data(), b1_.size());
            adam(w2_.data(), g_w2.data(), w2_.size());
            adam(b2_.data(), g_b2.data(), b2_.size());
            adam(w3_.data(), g_w3.data(), w3_.size());
            adam(&b3_, &g_b3, 1);
        }
    }
}

double
MlpRegressor::forward(const std::vector<double> &x) const
{
    const std::size_t hs = static_cast<std::size_t>(config_.hiddenSize);
    std::vector<double> a1(hs), a2(hs);
    for (std::size_t j = 0; j < hs; ++j) {
        double z = b1_[j];
        for (int i = 0; i < kInputs; ++i)
            z += w1_[j * kInputs + static_cast<std::size_t>(i)] *
                 x[static_cast<std::size_t>(i)];
        a1[j] = z > 0.0 ? z : 0.0;
    }
    for (std::size_t j = 0; j < hs; ++j) {
        double z = b2_[j];
        for (std::size_t i = 0; i < hs; ++i)
            z += w2_[j * hs + i] * a1[i];
        a2[j] = z > 0.0 ? z : 0.0;
    }
    double out = b3_;
    for (std::size_t j = 0; j < hs; ++j)
        out += w3_[j] * a2[j];
    return out;
}

double
MlpRegressor::predict(const ProfilingSample &sample) const
{
    ERMS_ASSERT_MSG(!w1_.empty(), "predict before fit");
    return forward(featurize(sample)) * yStd_ + yMean_;
}

std::vector<double>
MlpRegressor::predictAll(const std::vector<ProfilingSample> &samples) const
{
    std::vector<double> out;
    out.reserve(samples.size());
    for (const ProfilingSample &s : samples)
        out.push_back(predict(s));
    return out;
}

} // namespace erms
