#include "applications.hpp"

#include <unordered_map>
#include <unordered_set>

#include "common/error.hpp"

namespace erms {

namespace {

/**
 * Register one microservice with an execution profile and a bootstrap
 * analytic latency model derived from it.
 */
MicroserviceId
addMs(MicroserviceCatalog &catalog, const std::string &name, double base_ms,
      int threads, double cpu_slowdown, double mem_slowdown,
      double network_ms = 0.2, double cv = 0.5)
{
    MicroserviceProfile profile;
    profile.name = name;
    profile.resources = ResourceSpec{0.1, 200.0};
    profile.threadsPerContainer = threads;
    profile.baseServiceMs = base_ms;
    profile.serviceCv = cv;
    profile.cpuSlowdown = cpu_slowdown;
    profile.memSlowdown = mem_slowdown;
    profile.networkMs = network_ms;
    const MicroserviceId id = catalog.add(profile);
    catalog.setModel(id, approximateModelFromProfile(profile));
    return id;
}

} // namespace

std::vector<MicroserviceId>
Application::sharedMicroservices() const
{
    std::unordered_map<MicroserviceId, int> users;
    for (const DependencyGraph &graph : graphs) {
        for (MicroserviceId id : graph.nodes())
            ++users[id];
    }
    std::vector<MicroserviceId> shared;
    for (const auto &[id, count] : users) {
        if (count >= 2)
            shared.push_back(id);
    }
    return shared;
}

std::size_t
Application::uniqueMicroservices() const
{
    std::unordered_set<MicroserviceId> unique;
    for (const DependencyGraph &graph : graphs) {
        for (MicroserviceId id : graph.nodes())
            unique.insert(id);
    }
    return unique.size();
}

Application
makeSocialNetwork(MicroserviceCatalog &catalog, ServiceId first_service)
{
    Application app;
    app.name = "social-network";

    // Entry / orchestration tiers: moderate service times, few threads.
    // Caches: fast, many threads. Databases: slow, few threads.
    const auto nginx_compose = addMs(catalog, "nginx-compose", 3.0, 8, 0.8, 1.0);
    const auto compose_post = addMs(catalog, "compose-post", 12.0, 3, 1.5, 1.8);
    const auto unique_id = addMs(catalog, "unique-id", 1.5, 8, 0.5, 0.6);
    const auto text_service = addMs(catalog, "text-service", 10.0, 3, 1.4, 1.6);
    const auto media_service = addMs(catalog, "media-service", 14.0, 3, 1.2, 2.0);
    const auto user_service = addMs(catalog, "user-service", 8.0, 4, 1.0, 1.4);
    const auto url_shorten = addMs(catalog, "url-shorten", 6.0, 4, 1.0, 1.2);
    const auto user_mention = addMs(catalog, "user-mention", 7.0, 4, 1.0, 1.2);
    const auto text_filter = addMs(catalog, "text-filter", 9.0, 3, 1.3, 1.4);
    const auto spell_check = addMs(catalog, "spell-check", 5.0, 4, 0.9, 1.0);
    const auto link_preview = addMs(catalog, "link-preview", 8.0, 3, 1.1, 1.3);
    const auto media_cache = addMs(catalog, "media-cache", 2.0, 8, 0.6, 0.8);
    const auto media_db = addMs(catalog, "media-db", 18.0, 2, 1.2, 2.4);
    const auto user_cache = addMs(catalog, "user-cache", 1.8, 8, 0.6, 0.8);
    const auto geo_tag = addMs(catalog, "geo-tag", 6.0, 4, 1.0, 1.1);
    const auto post_storage = addMs(catalog, "post-storage", 10.0, 4, 1.1, 1.6);
    const auto post_db = addMs(catalog, "post-db", 16.0, 2, 1.2, 2.2);
    const auto write_timeline = addMs(catalog, "write-timeline", 9.0, 3, 1.2, 1.5);
    const auto notification = addMs(catalog, "notification", 4.0, 6, 0.8, 0.9);
    const auto social_graph = addMs(catalog, "social-graph", 11.0, 3, 1.3, 1.7);
    const auto social_cache = addMs(catalog, "social-cache", 2.2, 8, 0.6, 0.8);
    const auto social_db = addMs(catalog, "social-db", 17.0, 2, 1.2, 2.3);
    const auto analytics = addMs(catalog, "analytics", 5.0, 6, 0.9, 1.0);

    const auto nginx_home = addMs(catalog, "nginx-home", 3.0, 8, 0.8, 1.0);
    const auto home_timeline = addMs(catalog, "home-timeline", 20.0, 2, 1.8, 2.2);
    const auto home_cache = addMs(catalog, "home-cache", 2.0, 8, 0.6, 0.8);
    const auto home_db = addMs(catalog, "home-db", 15.0, 2, 1.2, 2.1);
    const auto ad_service = addMs(catalog, "ad-service", 7.0, 4, 1.0, 1.2);
    const auto post_cache = addMs(catalog, "post-cache", 2.0, 8, 0.6, 0.8);
    const auto ranking = addMs(catalog, "ranking-service", 9.0, 3, 1.3, 1.4);

    const auto nginx_user = addMs(catalog, "nginx-user", 3.0, 8, 0.8, 1.0);
    const auto user_timeline = addMs(catalog, "user-timeline", 25.0, 2, 2.0, 2.4);
    const auto ut_cache = addMs(catalog, "user-timeline-cache", 2.0, 8, 0.6, 0.8);
    const auto ut_db = addMs(catalog, "user-timeline-db", 16.0, 2, 1.2, 2.2);
    const auto profile_service = addMs(catalog, "profile-service", 8.0, 4, 1.0, 1.3);
    const auto url_expand = addMs(catalog, "url-expand", 5.0, 4, 0.9, 1.0);

    // Service 1: composePost.
    {
        DependencyGraph g(first_service, nginx_compose);
        g.addCall(nginx_compose, compose_post, 0);
        g.addCall(compose_post, unique_id, 0);
        g.addCall(compose_post, text_service, 0);
        g.addCall(compose_post, media_service, 0);
        g.addCall(compose_post, user_service, 0);
        g.addCall(text_service, url_shorten, 0);
        g.addCall(text_service, user_mention, 0);
        g.addCall(text_service, text_filter, 0);
        g.addCall(text_service, spell_check, 1);
        g.addCall(url_shorten, link_preview, 0);
        g.addCall(media_service, media_cache, 0);
        g.addCall(media_service, media_db, 1);
        g.addCall(user_service, user_cache, 0);
        g.addCall(compose_post, geo_tag, 1);
        g.addCall(compose_post, post_storage, 2);
        g.addCall(post_storage, post_db, 0);
        g.addCall(compose_post, write_timeline, 3);
        g.addCall(compose_post, notification, 3);
        g.addCall(write_timeline, social_graph, 0);
        g.addCall(social_graph, social_cache, 0);
        g.addCall(social_graph, social_db, 1);
        g.addCall(compose_post, analytics, 4);
        g.validate();
        app.graphs.push_back(std::move(g));
        app.serviceNames.push_back("composePost");
        app.defaultSlaMs.push_back(200.0);
    }

    // Service 2: readHomeTimeline.
    {
        DependencyGraph g(first_service + 1, nginx_home);
        g.addCall(nginx_home, home_timeline, 0);
        g.addCall(home_timeline, home_cache, 0);
        g.addCall(home_timeline, ad_service, 0);
        g.addCall(home_cache, home_db, 0);
        g.addCall(home_timeline, social_graph, 1);
        g.addCall(home_timeline, post_storage, 2, 2.0);
        g.addCall(post_storage, post_cache, 0);
        g.addCall(home_timeline, user_service, 3);
        g.addCall(home_timeline, ranking, 3);
        g.validate();
        app.graphs.push_back(std::move(g));
        app.serviceNames.push_back("readHomeTimeline");
        app.defaultSlaMs.push_back(150.0);
    }

    // Service 3: readUserTimeline.
    {
        DependencyGraph g(first_service + 2, nginx_user);
        g.addCall(nginx_user, user_timeline, 0);
        g.addCall(user_timeline, ut_cache, 0);
        g.addCall(user_timeline, ut_db, 1);
        g.addCall(user_timeline, post_storage, 2, 2.0);
        g.addCall(user_timeline, user_service, 3);
        g.addCall(user_timeline, profile_service, 3);
        g.addCall(profile_service, url_expand, 0);
        g.validate();
        app.graphs.push_back(std::move(g));
        app.serviceNames.push_back("readUserTimeline");
        app.defaultSlaMs.push_back(150.0);
    }

    ERMS_ASSERT(app.uniqueMicroservices() == 36);
    ERMS_ASSERT(app.sharedMicroservices().size() == 3);
    return app;
}

Application
makeMediaService(MicroserviceCatalog &catalog, ServiceId first_service)
{
    Application app;
    app.name = "media-service";

    const auto nginx = addMs(catalog, "nginx-media", 3.0, 8, 0.8, 1.0);
    const auto compose = addMs(catalog, "compose-review", 13.0, 3, 1.5, 1.8);
    const auto unique_id = addMs(catalog, "unique-id-m", 1.5, 8, 0.5, 0.6);
    const auto movie_id = addMs(catalog, "movie-id", 7.0, 4, 1.0, 1.2);
    const auto text = addMs(catalog, "text-m", 9.0, 3, 1.3, 1.5);
    const auto user = addMs(catalog, "user-m", 8.0, 4, 1.0, 1.4);
    const auto rating = addMs(catalog, "rating", 8.0, 4, 1.1, 1.3);
    const auto movie_info = addMs(catalog, "movie-info", 10.0, 3, 1.2, 1.5);
    const auto movie_info_cache = addMs(catalog, "movie-info-cache", 2.0, 8, 0.6, 0.8);
    const auto movie_info_db = addMs(catalog, "movie-info-db", 16.0, 2, 1.2, 2.2);
    const auto rating_cache = addMs(catalog, "rating-cache", 2.0, 8, 0.6, 0.8);
    const auto rating_db = addMs(catalog, "rating-db", 14.0, 2, 1.2, 2.0);
    const auto review_storage = addMs(catalog, "review-storage", 11.0, 3, 1.2, 1.6);
    const auto review_cache = addMs(catalog, "review-cache", 2.0, 8, 0.6, 0.8);
    const auto review_db = addMs(catalog, "review-db", 17.0, 2, 1.2, 2.3);
    const auto user_review = addMs(catalog, "user-review", 9.0, 3, 1.2, 1.4);
    const auto user_review_cache = addMs(catalog, "user-review-cache", 2.0, 8, 0.6, 0.8);
    const auto user_review_db = addMs(catalog, "user-review-db", 15.0, 2, 1.2, 2.1);
    const auto movie_review = addMs(catalog, "movie-review", 9.0, 3, 1.2, 1.4);
    const auto movie_review_cache = addMs(catalog, "movie-review-cache", 2.0, 8, 0.6, 0.8);
    const auto movie_review_db = addMs(catalog, "movie-review-db", 15.0, 2, 1.2, 2.1);
    const auto cast_info = addMs(catalog, "cast-info", 8.0, 4, 1.0, 1.3);
    const auto cast_cache = addMs(catalog, "cast-cache", 2.0, 8, 0.6, 0.8);
    const auto cast_db = addMs(catalog, "cast-db", 14.0, 2, 1.2, 2.0);
    const auto plot = addMs(catalog, "plot", 7.0, 4, 1.0, 1.2);
    const auto plot_cache = addMs(catalog, "plot-cache", 2.0, 8, 0.6, 0.8);
    const auto plot_db = addMs(catalog, "plot-db", 14.0, 2, 1.2, 2.0);
    const auto video = addMs(catalog, "video", 18.0, 2, 1.6, 2.0);
    const auto video_cache = addMs(catalog, "video-cache", 2.5, 8, 0.6, 0.8);
    const auto video_db = addMs(catalog, "video-db", 20.0, 2, 1.3, 2.4);
    const auto photo = addMs(catalog, "photo", 12.0, 3, 1.3, 1.8);
    const auto photo_cache = addMs(catalog, "photo-cache", 2.0, 8, 0.6, 0.8);
    const auto photo_db = addMs(catalog, "photo-db", 16.0, 2, 1.2, 2.2);
    const auto page = addMs(catalog, "page", 6.0, 4, 1.0, 1.1);
    const auto search = addMs(catalog, "search-m", 10.0, 3, 1.3, 1.5);
    const auto recommender = addMs(catalog, "recommender-m", 9.0, 3, 1.2, 1.4);
    const auto trailer = addMs(catalog, "trailer", 8.0, 4, 1.0, 1.3);
    const auto subtitle = addMs(catalog, "subtitle", 6.0, 4, 0.9, 1.1);

    DependencyGraph g(first_service, nginx);
    g.addCall(nginx, compose, 0);
    g.addCall(compose, unique_id, 0);
    g.addCall(compose, movie_id, 0);
    g.addCall(compose, text, 0);
    g.addCall(compose, user, 0);
    g.addCall(compose, rating, 0);
    g.addCall(movie_id, movie_info, 0);
    g.addCall(movie_info, movie_info_cache, 0);
    g.addCall(movie_info, movie_info_db, 1);
    g.addCall(rating, rating_cache, 0);
    g.addCall(rating, rating_db, 1);
    g.addCall(compose, review_storage, 1);
    g.addCall(review_storage, review_cache, 0);
    g.addCall(review_storage, review_db, 1);
    g.addCall(compose, user_review, 2);
    g.addCall(compose, movie_review, 2);
    g.addCall(user_review, user_review_cache, 0);
    g.addCall(user_review, user_review_db, 1);
    g.addCall(movie_review, movie_review_cache, 0);
    g.addCall(movie_review, movie_review_db, 1);
    g.addCall(compose, cast_info, 3);
    g.addCall(cast_info, cast_cache, 0);
    g.addCall(cast_info, cast_db, 1);
    g.addCall(compose, plot, 3);
    g.addCall(plot, plot_cache, 0);
    g.addCall(plot, plot_db, 1);
    g.addCall(compose, video, 4);
    g.addCall(video, video_cache, 0);
    g.addCall(video, video_db, 0);
    g.addCall(video, trailer, 1);
    g.addCall(trailer, subtitle, 0);
    g.addCall(compose, photo, 4);
    g.addCall(photo, photo_cache, 0);
    g.addCall(photo, photo_db, 1);
    g.addCall(compose, page, 5);
    g.addCall(compose, search, 5);
    g.addCall(search, recommender, 0);
    g.validate();

    app.graphs.push_back(std::move(g));
    app.serviceNames.push_back("composeReview");
    app.defaultSlaMs.push_back(250.0);

    ERMS_ASSERT(app.uniqueMicroservices() == 38);
    ERMS_ASSERT(app.sharedMicroservices().empty());
    return app;
}

Application
makeHotelReservation(MicroserviceCatalog &catalog, ServiceId first_service)
{
    Application app;
    app.name = "hotel-reservation";

    // 0.1-core containers realistically run one or two worker threads;
    // low concurrency gives each tier the strong queueing knee of Fig. 3.
    const auto fe_search = addMs(catalog, "frontend-search", 3.0, 4, 0.8, 1.0, 0.2, 0.3);
    const auto search = addMs(catalog, "search", 14.0, 1, 1.6, 1.9, 0.2, 0.4);
    const auto geo = addMs(catalog, "geo", 9.0, 2, 1.2, 1.4, 0.2, 0.35);
    const auto rate = addMs(catalog, "rate", 10.0, 2, 1.3, 1.5, 0.2, 0.35);
    const auto profile = addMs(catalog, "profile-hotel", 8.0, 2, 1.1, 1.4, 0.2, 0.3);
    const auto memcached = addMs(catalog, "memcached-profile", 2.0, 4, 0.6, 0.8, 0.2, 0.25);

    const auto fe_rec = addMs(catalog, "frontend-recommend", 3.0, 4, 0.8, 1.0, 0.2, 0.3);
    const auto recommend = addMs(catalog, "recommendation", 12.0, 1, 1.4, 1.6, 0.2, 0.4);
    const auto attractions = addMs(catalog, "attractions", 7.0, 2, 1.0, 1.2, 0.2, 0.3);

    const auto fe_res = addMs(catalog, "frontend-reserve", 3.0, 4, 0.8, 1.0, 0.2, 0.3);
    const auto reservation = addMs(catalog, "reservation", 13.0, 1, 1.4, 1.7, 0.2, 0.4);
    const auto check_avail = addMs(catalog, "check-availability", 9.0, 2, 1.2, 1.4, 0.2, 0.35);
    const auto payment = addMs(catalog, "payment", 11.0, 2, 1.2, 1.5, 0.2, 0.35);

    const auto fe_login = addMs(catalog, "frontend-login", 3.0, 4, 0.8, 1.0, 0.2, 0.3);
    const auto user_hotel = addMs(catalog, "user-hotel", 7.0, 2, 1.0, 1.2, 0.2, 0.3);

    // Service 1: search.
    {
        DependencyGraph g(first_service, fe_search);
        g.addCall(fe_search, search, 0);
        g.addCall(search, geo, 0);
        g.addCall(search, rate, 0);
        g.addCall(search, profile, 1);
        g.addCall(profile, memcached, 0);
        g.validate();
        app.graphs.push_back(std::move(g));
        app.serviceNames.push_back("searchHotel");
        app.defaultSlaMs.push_back(120.0);
    }
    // Service 2: recommend.
    {
        DependencyGraph g(first_service + 1, fe_rec);
        g.addCall(fe_rec, recommend, 0);
        g.addCall(recommend, geo, 0);
        g.addCall(recommend, rate, 0);
        g.addCall(recommend, profile, 1);
        g.addCall(recommend, attractions, 2);
        g.validate();
        app.graphs.push_back(std::move(g));
        app.serviceNames.push_back("recommend");
        app.defaultSlaMs.push_back(120.0);
    }
    // Service 3: reserve.
    {
        DependencyGraph g(first_service + 2, fe_res);
        g.addCall(fe_res, reservation, 0);
        g.addCall(reservation, check_avail, 0);
        g.addCall(reservation, rate, 1);
        g.addCall(reservation, payment, 2);
        g.addCall(reservation, profile, 3);
        g.validate();
        app.graphs.push_back(std::move(g));
        app.serviceNames.push_back("reserve");
        app.defaultSlaMs.push_back(180.0);
    }
    // Service 4: login.
    {
        DependencyGraph g(first_service + 3, fe_login);
        g.addCall(fe_login, user_hotel, 0);
        g.addCall(user_hotel, profile, 0);
        g.validate();
        app.graphs.push_back(std::move(g));
        app.serviceNames.push_back("login");
        app.defaultSlaMs.push_back(80.0);
    }

    ERMS_ASSERT(app.uniqueMicroservices() == 15);
    ERMS_ASSERT(app.sharedMicroservices().size() == 3);
    return app;
}

Application
makeMotivationChain(MicroserviceCatalog &catalog, ServiceId first_service)
{
    Application app;
    app.name = "motivation-chain";

    // U (userTimeline) is light but *queueing-prone* (a single worker
    // thread gives it an early knee and a steep post-knee slope) while
    // P (postStorage) is a heavy-but-stable storage tier (large service
    // time, wide thread pool, low interference sensitivity). P's mean
    // latency exceeds U's even though U is far more workload-sensitive —
    // exactly the regime where mean-proportional baselines under-serve U
    // (Fig. 4).
    const auto u = addMs(catalog, "mot-user-timeline", 12.0, 1, 1.8, 2.2);
    const auto p =
        addMs(catalog, "mot-post-storage", 40.0, 16, 0.4, 0.5, 0.2, 0.3);

    DependencyGraph g(first_service, u);
    g.addCall(u, p, 0);
    g.validate();
    app.graphs.push_back(std::move(g));
    app.serviceNames.push_back("timeline");
    app.defaultSlaMs.push_back(300.0);
    return app;
}

Application
makeMotivationShared(MicroserviceCatalog &catalog, ServiceId first_service)
{
    Application app;
    app.name = "motivation-shared";

    const auto u = addMs(catalog, "shr-user-timeline", 14.0, 2, 1.8, 2.2);
    const auto h =
        addMs(catalog, "shr-home-timeline", 12.0, 6, 0.6, 0.8, 0.2, 0.4);
    const auto p = addMs(catalog, "shr-post-storage", 20.0, 3, 1.0, 1.2);

    {
        DependencyGraph g(first_service, u);
        g.addCall(u, p, 0);
        g.validate();
        app.graphs.push_back(std::move(g));
        app.serviceNames.push_back("service1-U-P");
        app.defaultSlaMs.push_back(300.0);
    }
    {
        DependencyGraph g(first_service + 1, h);
        g.addCall(h, p, 0);
        g.validate();
        app.graphs.push_back(std::move(g));
        app.serviceNames.push_back("service2-H-P");
        app.defaultSlaMs.push_back(300.0);
    }

    ERMS_ASSERT(app.sharedMicroservices().size() == 1);
    return app;
}

} // namespace erms
