/**
 * @file
 * DeathStarBench-like application catalog (§6.1): Social Network (36
 * microservices, 3 services, 3 shared), Media Service (38 microservices,
 * 1 service), Hotel Reservation (15 microservices, 4 services, 3
 * shared), plus the two motivating mini-apps of §2 (the U→P chain of
 * Fig. 4 and the two-service shared-P scenario of Fig. 5).
 *
 * Each builder appends microservices to a caller-supplied catalog (so
 * multiple applications can coexist in one experiment) and wires
 * dependency graphs whose shapes mirror the real benchmark: compose
 * flows fanning out over text/media/user tiers, timeline reads hitting
 * storage tiers, hotel search fanning out over geo/rate/profile.
 * Every microservice gets a physical execution profile and a bootstrap
 * analytic latency model (approximateModelFromProfile).
 */

#ifndef ERMS_APPS_APPLICATIONS_HPP
#define ERMS_APPS_APPLICATIONS_HPP

#include <string>
#include <vector>

#include "graph/dependency_graph.hpp"
#include "model/catalog.hpp"

namespace erms {

/** One built application: graphs reference ids in the shared catalog. */
struct Application
{
    std::string name;
    std::vector<DependencyGraph> graphs;
    std::vector<std::string> serviceNames;
    /** Default SLA per service (ms), overridable by experiments. */
    std::vector<double> defaultSlaMs;

    /** Microservices appearing in more than one of this app's graphs. */
    std::vector<MicroserviceId> sharedMicroservices() const;

    /** Distinct microservices across all graphs. */
    std::size_t uniqueMicroservices() const;
};

/** Social Network: 36 microservices, 3 services, 3 shared. */
Application makeSocialNetwork(MicroserviceCatalog &catalog,
                              ServiceId first_service);

/** Media Service: 38 microservices, 1 service. */
Application makeMediaService(MicroserviceCatalog &catalog,
                             ServiceId first_service);

/** Hotel Reservation: 15 microservices, 4 services, 3 shared. */
Application makeHotelReservation(MicroserviceCatalog &catalog,
                                 ServiceId first_service);

/**
 * Fig. 4 motivation: one service calling userTimeline (U) then
 * postStorage (P) sequentially; U is markedly more workload-sensitive.
 */
Application makeMotivationChain(MicroserviceCatalog &catalog,
                                ServiceId first_service);

/**
 * Fig. 5 motivation: service 1 = U -> P, service 2 = H -> P with P
 * shared; U is more latency-sensitive than H.
 */
Application makeMotivationShared(MicroserviceCatalog &catalog,
                                 ServiceId first_service);

} // namespace erms

#endif // ERMS_APPS_APPLICATIONS_HPP
