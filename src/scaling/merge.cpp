#include "merge.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/error.hpp"

namespace erms {

namespace {

/** Guard against degenerate zero slopes; a tiny positive A keeps the
 *  closed forms well defined while contributing negligible budget. */
constexpr double kMinA = 1e-12;

double
clampA(double a)
{
    return a > kMinA ? a : kMinA;
}

} // namespace

MergeParams
mergeSequential(const std::vector<MergeParams> &parts)
{
    ERMS_ASSERT(!parts.empty());
    double sqrt_ar = 0.0;
    double sqrt_a_over_r = 0.0;
    double b_sum = 0.0;
    for (const MergeParams &p : parts) {
        ERMS_ASSERT(p.R > 0.0);
        const double a = clampA(p.A);
        sqrt_ar += std::sqrt(a * p.R);
        sqrt_a_over_r += std::sqrt(a / p.R);
        b_sum += p.b;
    }
    MergeParams merged;
    merged.A = sqrt_ar * sqrt_a_over_r;
    merged.R = sqrt_ar / sqrt_a_over_r;
    merged.b = b_sum;
    return merged;
}

MergeParams
mergeParallel(const std::vector<MergeParams> &parts)
{
    ERMS_ASSERT(!parts.empty());
    double a_sum = 0.0;
    double b_max = parts.front().b;
    double weighted_r = 0.0;
    for (const MergeParams &p : parts) {
        ERMS_ASSERT(p.R > 0.0);
        const double a = clampA(p.A);
        a_sum += a;
        b_max = std::max(b_max, p.b);
        weighted_r += a * p.R;
    }
    MergeParams merged;
    merged.A = a_sum;
    merged.b = b_max;
    merged.R = weighted_r / a_sum;
    return merged;
}

MergeTree::MergeTree(
    const DependencyGraph &graph,
    const std::unordered_map<MicroserviceId, MergeParams> &params)
{
    root_ = mergeMicroservice(graph, graph.root(), params);
}

int
MergeTree::addReal(MicroserviceId id, const MergeParams &params)
{
    MergeNode node;
    node.kind = MergeNode::Kind::Real;
    node.real = id;
    node.params = params;
    node.params.A = std::max(node.params.A, kMinA);
    nodes_.push_back(std::move(node));
    return static_cast<int>(nodes_.size()) - 1;
}

int
MergeTree::addSequential(std::vector<int> children)
{
    ERMS_ASSERT(children.size() >= 2);
    std::vector<MergeParams> parts;
    parts.reserve(children.size());
    for (int child : children)
        parts.push_back(nodes_[static_cast<std::size_t>(child)].params);

    MergeNode node;
    node.kind = MergeNode::Kind::Sequential;
    node.children = std::move(children);
    node.params = mergeSequential(parts);
    nodes_.push_back(std::move(node));
    return static_cast<int>(nodes_.size()) - 1;
}

int
MergeTree::addParallel(std::vector<int> children)
{
    ERMS_ASSERT(children.size() >= 2);
    std::vector<MergeParams> parts;
    parts.reserve(children.size());
    for (int child : children)
        parts.push_back(nodes_[static_cast<std::size_t>(child)].params);

    MergeNode node;
    node.kind = MergeNode::Kind::Parallel;
    node.children = std::move(children);
    node.params = mergeParallel(parts);
    nodes_.push_back(std::move(node));
    return static_cast<int>(nodes_.size()) - 1;
}

int
MergeTree::mergeMicroservice(
    const DependencyGraph &graph, MicroserviceId id,
    const std::unordered_map<MicroserviceId, MergeParams> &params)
{
    auto it = params.find(id);
    ERMS_ASSERT_MSG(it != params.end(),
                    "missing merge parameters for a graph node");
    const int self = addReal(id, it->second);

    const auto stages = graph.stages(id);
    if (stages.empty())
        return self;

    // The node's own latency plus each stage in sequence; within a stage,
    // branches run in parallel.
    std::vector<int> sequence;
    sequence.push_back(self);
    for (const auto &stage : stages) {
        std::vector<int> branches;
        branches.reserve(stage.size());
        for (const DependencyGraph::Call &call : stage)
            branches.push_back(mergeMicroservice(graph, call.callee, params));
        if (branches.size() == 1)
            sequence.push_back(branches.front());
        else
            sequence.push_back(addParallel(std::move(branches)));
    }
    return addSequential(std::move(sequence));
}

const MergeNode &
MergeTree::node(int index) const
{
    ERMS_ASSERT(index >= 0 &&
                static_cast<std::size_t>(index) < nodes_.size());
    return nodes_[static_cast<std::size_t>(index)];
}

std::unordered_map<MicroserviceId, double>
MergeTree::unfoldTargets(double total_budget_ms) const
{
    const MergeParams &root_params = root().params;
    if (total_budget_ms <= root_params.b) {
        throw InfeasibleError(
            "latency budget " + std::to_string(total_budget_ms) +
            "ms does not exceed the aggregate intercept " +
            std::to_string(root_params.b) + "ms");
    }

    std::unordered_map<MicroserviceId, double> targets;

    // Depth-first unfolding; each node receives its latency budget.
    const std::function<void(int, double)> unfold = [&](int index,
                                                        double budget) {
        const MergeNode &n = node(index);
        switch (n.kind) {
          case MergeNode::Kind::Real:
            targets[n.real] = budget;
            break;
          case MergeNode::Kind::Parallel:
            // Eq. (10): parallel branches share the same target.
            for (int child : n.children)
                unfold(child, budget);
            break;
          case MergeNode::Kind::Sequential: {
            // Eq. (5): T_j - b_j proportional to sqrt(A_j R_j) within the
            // slack budget - sum_j b_j.
            double b_sum = 0.0;
            double sqrt_ar_sum = 0.0;
            for (int child : n.children) {
                const MergeParams &p = node(child).params;
                b_sum += p.b;
                sqrt_ar_sum += std::sqrt(std::max(p.A, kMinA) * p.R);
            }
            const double slack = budget - b_sum;
            ERMS_ASSERT_MSG(sqrt_ar_sum > 0.0, "degenerate merge node");
            for (int child : n.children) {
                const MergeParams &p = node(child).params;
                const double share =
                    std::sqrt(std::max(p.A, kMinA) * p.R) / sqrt_ar_sum;
                unfold(child, p.b + share * slack);
            }
            break;
          }
        }
    };

    unfold(root_, total_budget_ms);
    return targets;
}

} // namespace erms
