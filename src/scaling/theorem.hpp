/**
 * @file
 * Closed-form resource-usage expressions from Appendix A (Theorem 1) for
 * the two-service scenario of Fig. 5: service 1 = {U, P}, service 2 =
 * {H, P}, with P shared. Used to verify RU^o <= RU^n <= RU^s.
 *
 * The appendix analyzes the special setting
 *   SLA_1 - b_u - b_p = SLA_2 - b_h - b_p  (equal slack D),
 * which these helpers assume.
 */

#ifndef ERMS_SCALING_THEOREM_HPP
#define ERMS_SCALING_THEOREM_HPP

namespace erms {

/** Parameters of the Appendix-A two-service scenario. */
struct TheoremScenario
{
    double au = 0.0, ah = 0.0, ap = 0.0; ///< slopes of U, H, P
    double bu = 0.0, bh = 0.0, bp = 0.0; ///< intercepts of U, H, P
    double Ru = 1.0, Rh = 1.0, Rp = 1.0; ///< resource demands
    double gamma1 = 0.0, gamma2 = 0.0;   ///< service workloads
    double sla1 = 0.0, sla2 = 0.0;       ///< end-to-end SLAs

    /** Common slack D = SLA_1 - b_u - b_p (== SLA_2 - b_h - b_p). */
    double slack() const { return sla1 - bu - bp; }

    /** Whether the equal-slack special setting holds (within eps). */
    bool equalSlack(double eps = 1e-9) const;
};

/** RU^s, Eq. (17): FCFS sharing without prioritization. */
double ruSharingFcfs(const TheoremScenario &s);

/** RU^n, Eq. (18): independent non-sharing deployment. */
double ruNonSharing(const TheoremScenario &s);

/**
 * RU^o upper bound, Eq. (19): solve Eqs. (13)/(14) independently. The
 * paper's printed trailing terms omit the 1/D denominator that
 * dimensional consistency (and the derivation sketch) requires; we apply
 * it to all terms.
 */
double ruPriorityUpperBound(const TheoremScenario &s);

/**
 * Resource usage of Erms' *practical* priority scheme: pick the priority
 * order by initial latency targets (§5.3.2), solve each service
 * independently with modified workloads, and deploy the max-combined
 * shared containers (fractional counts, no integer rounding).
 *
 * Reproduction note: Theorem 1 bounds the *joint* optimum of
 * Eqs. (13)-(14). This decoupled computation tracks it closely but can
 * exceed RU^n by up to ~2% in corner cases (measured over 50k random
 * scenarios); see EXPERIMENTS.md.
 */
double ruPriorityActual(const TheoremScenario &s);

} // namespace erms

#endif // ERMS_SCALING_THEOREM_HPP
