#include "theorem.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace erms {

namespace {

/**
 * Fractional container counts for a two-microservice sequential chain
 * {x, y} with workload-scaled demands A_x = a_x * gamma_x etc. and slack
 * D: by Eq. (5), n_x = sqrt(A_x / R_x) * (sqrt(A_x R_x) + sqrt(A_y R_y))
 * / D.
 */
struct ChainSolution
{
    double nx = 0.0;
    double ny = 0.0;
};

ChainSolution
solveChain(double ax_gamma, double rx, double ay_gamma, double ry, double d)
{
    ERMS_ASSERT(d > 0.0);
    const double sx = std::sqrt(ax_gamma * rx);
    const double sy = std::sqrt(ay_gamma * ry);
    ChainSolution sol;
    sol.nx = std::sqrt(ax_gamma / rx) * (sx + sy) / d;
    sol.ny = std::sqrt(ay_gamma / ry) * (sx + sy) / d;
    return sol;
}

} // namespace

bool
TheoremScenario::equalSlack(double eps) const
{
    return std::fabs((sla1 - bu - bp) - (sla2 - bh - bp)) <= eps;
}

double
ruSharingFcfs(const TheoremScenario &s)
{
    ERMS_ASSERT(s.slack() > 0.0);
    // Eq. (17): both services see gamma1 + gamma2 at P; the joint KKT
    // optimum merges U and H into an effective parallel entry tier.
    const double entry = std::sqrt(s.au * s.gamma1 * s.Ru +
                                   s.ah * s.gamma2 * s.Rh);
    const double shared =
        std::sqrt(s.ap * (s.gamma1 + s.gamma2) * s.Rp);
    const double numerator = (entry + shared) * (entry + shared);
    return numerator / s.slack();
}

double
ruNonSharing(const TheoremScenario &s)
{
    ERMS_ASSERT(s.slack() > 0.0);
    // Eq. (18): each service deploys its own P partition.
    const double term1 = std::sqrt(s.au * s.Ru) + std::sqrt(s.ap * s.Rp);
    const double term2 = std::sqrt(s.ah * s.Rh) + std::sqrt(s.ap * s.Rp);
    return (s.gamma1 * term1 * term1 + s.gamma2 * term2 * term2) /
           s.slack();
}

double
ruPriorityUpperBound(const TheoremScenario &s)
{
    ERMS_ASSERT(s.slack() > 0.0);
    const double d = s.slack();
    const double svc2 = std::sqrt(s.ah * s.gamma2 * s.Rh) +
                        std::sqrt(s.ap * (s.gamma1 + s.gamma2) * s.Rp);
    // Trailing terms carry the 1/D denominator (see header note).
    return (svc2 * svc2 + s.au * s.gamma1 * s.Ru +
            std::sqrt(s.au * s.ap * s.Ru * s.Rp) * s.gamma1) /
           d;
}

double
ruPriorityActual(const TheoremScenario &s)
{
    ERMS_ASSERT(s.slack() > 0.0);
    const double d = s.slack();

    // Erms' priority rule (§5.3.2): the service with the *lower* initial
    // latency target at the shared microservice is served first. With
    // Eq. (5), the P-target share of service k is
    // sqrt(A_pk R_p) / (sqrt(A_k R_k) + sqrt(A_pk R_p)).
    const auto p_share = [&](double a_own, double r_own, double gamma) {
        const double sp = std::sqrt(s.ap * gamma * s.Rp);
        return sp / (std::sqrt(a_own * gamma * r_own) + sp);
    };
    const bool svc1_first = p_share(s.au, s.Ru, s.gamma1) <=
                            p_share(s.ah, s.Rh, s.gamma2);

    const double total_gamma = s.gamma1 + s.gamma2;
    const double gamma1_at_p = svc1_first ? s.gamma1 : total_gamma;
    const double gamma2_at_p = svc1_first ? total_gamma : s.gamma2;

    const ChainSolution svc1 = solveChain(s.au * s.gamma1, s.Ru,
                                          s.ap * gamma1_at_p, s.Rp, d);
    const ChainSolution svc2 = solveChain(s.ah * s.gamma2, s.Rh,
                                          s.ap * gamma2_at_p, s.Rp, d);
    const double np = std::max(svc1.ny, svc2.ny);
    return svc1.nx * s.Ru + svc2.nx * s.Rh + np * s.Rp;
}

} // namespace erms
