/**
 * @file
 * Output types of the scaling pipeline: per-microservice latency targets
 * and container counts for one service (ServiceAllocation) and for a set
 * of services sharing microservices (GlobalPlan).
 */

#ifndef ERMS_SCALING_PLAN_HPP
#define ERMS_SCALING_PLAN_HPP

#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "model/latency_model.hpp"

namespace erms {

/** Allocation decision for one microservice within one service. */
struct MicroserviceAllocation
{
    /** Latency budget assigned to this microservice (ms). */
    double latencyTargetMs = 0.0;
    /** Workload used for sizing (requests/minute; includes any
     *  priority-modified share of shared traffic). */
    double workload = 0.0;
    /** Exact fractional container demand n = A / (T - b). */
    double containersFractional = 0.0;
    /** Deployed containers (rounded up, >= 1 when workload > 0). */
    int containers = 0;
    /** The latency band used to size this microservice. */
    LatencyBand band{};
    /** Which interval of the piecewise model the band came from. */
    Interval intervalUsed = Interval::AboveCutoff;
    /** Dominant-resource demand per container (Eq. (3)). */
    double resourceDemand = 0.0;
};

/** Solution of the basic scaling model (Eq. (2)) for one service. */
struct ServiceAllocation
{
    ServiceId service = kInvalidService;
    double slaMs = 0.0;
    bool feasible = false;
    /** Human-readable reason when infeasible. */
    std::string infeasibleReason;
    std::unordered_map<MicroserviceId, MicroserviceAllocation> perMicroservice;

    /** Objective of Eq. (2): sum over microservices of n_i * R_i. */
    double totalResource() const;

    /** Total deployed containers. */
    int totalContainers() const;
};

/** How concurrent requests are handled at shared microservices. */
enum class SharingPolicy
{
    /** Erms: priority scheduling with recomputed modified workloads. */
    Priority,
    /** Shared containers, FCFS queueing (min latency target wins). */
    FcfsSharing,
    /** Separate container partitions per service (§2.3's scheme 2). */
    NonSharing,
};

/** Cluster-wide plan across all services. */
struct GlobalPlan
{
    SharingPolicy policy = SharingPolicy::Priority;
    bool feasible = false;
    std::string infeasibleReason;

    /** Final container count per microservice (deployed once, shared). */
    std::unordered_map<MicroserviceId, int> containers;

    /** Per-service allocations (targets, modified workloads, demands). */
    std::vector<ServiceAllocation> services;

    /**
     * Priority order per shared microservice: services listed from
     * highest to lowest priority (§5.3.2: lower initial latency target
     * first).
     */
    std::unordered_map<MicroserviceId, std::vector<ServiceId>> priorityOrder;

    /** Objective value: sum of n_i * R_i over deployed containers. */
    double totalResource = 0.0;

    /** Total deployed containers. */
    int totalContainers = 0;
};

} // namespace erms

#endif // ERMS_SCALING_PLAN_HPP
