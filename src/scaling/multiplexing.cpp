#include "multiplexing.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace erms {

MultiplexingPlanner::MultiplexingPlanner(const MicroserviceCatalog &catalog,
                                         ClusterCapacity capacity,
                                         SolverOptions options)
    : catalog_(catalog), capacity_(capacity),
      solver_(catalog, capacity, options)
{
}

std::unordered_map<MicroserviceId, std::vector<ServiceId>>
MultiplexingPlanner::sharedMicroservices(
    const std::vector<ServiceSpec> &services)
{
    std::unordered_map<MicroserviceId, std::vector<ServiceId>> users;
    for (const ServiceSpec &svc : services) {
        ERMS_ASSERT(svc.graph != nullptr);
        for (MicroserviceId id : svc.graph->nodes())
            users[id].push_back(svc.id);
    }
    std::unordered_map<MicroserviceId, std::vector<ServiceId>> shared;
    for (auto &[id, list] : users) {
        if (list.size() >= 2)
            shared.emplace(id, std::move(list));
    }
    return shared;
}

void
MultiplexingPlanner::finalize(GlobalPlan &plan) const
{
    plan.totalContainers = 0;
    plan.totalResource = 0.0;
    for (const auto &[id, count] : plan.containers) {
        plan.totalContainers += count;
        plan.totalResource +=
            count * dominantShare(catalog_.profile(id).resources, capacity_);
    }
}

GlobalPlan
MultiplexingPlanner::plan(const std::vector<ServiceSpec> &services,
                          const Interference &itf,
                          SharingPolicy policy) const
{
    switch (policy) {
      case SharingPolicy::Priority:
        return planPriority(services, itf);
      case SharingPolicy::FcfsSharing:
        return planFcfs(services, itf);
      case SharingPolicy::NonSharing:
        return planNonSharing(services, itf);
    }
    ERMS_ASSERT_MSG(false, "unreachable sharing policy");
    return {};
}

GlobalPlan
MultiplexingPlanner::planNonSharing(const std::vector<ServiceSpec> &services,
                                    const Interference &itf) const
{
    GlobalPlan plan;
    plan.policy = SharingPolicy::NonSharing;
    plan.feasible = true;

    for (const ServiceSpec &svc : services) {
        ServiceScalingRequest request;
        request.graph = svc.graph;
        request.slaMs = svc.slaMs;
        request.workload = svc.workload;
        ServiceAllocation alloc = solver_.solve(request, itf);
        if (!alloc.feasible) {
            plan.feasible = false;
            plan.infeasibleReason = alloc.infeasibleReason;
        }
        // Dedicated partitions: container demands add up per service.
        for (const auto &[id, ms_alloc] : alloc.perMicroservice)
            plan.containers[id] += ms_alloc.containers;
        plan.services.push_back(std::move(alloc));
    }
    finalize(plan);
    return plan;
}

GlobalPlan
MultiplexingPlanner::planFcfs(const std::vector<ServiceSpec> &services,
                              const Interference &itf) const
{
    GlobalPlan plan;
    plan.policy = SharingPolicy::FcfsSharing;
    plan.feasible = true;

    const auto shared = sharedMicroservices(services);

    // Total workload per shared microservice across all services.
    std::unordered_map<MicroserviceId, double> total_gamma;
    for (const ServiceSpec &svc : services) {
        const auto workloads = svc.graph->workloads(svc.workload);
        for (const auto &[id, gamma] : workloads) {
            if (shared.count(id))
                total_gamma[id] += gamma;
        }
    }

    for (const ServiceSpec &svc : services) {
        ServiceScalingRequest request;
        request.graph = svc.graph;
        request.slaMs = svc.slaMs;
        request.workload = svc.workload;
        request.workloadOverride = &total_gamma;
        ServiceAllocation alloc = solver_.solve(request, itf);
        if (!alloc.feasible) {
            plan.feasible = false;
            plan.infeasibleReason = alloc.infeasibleReason;
        }
        // Shared containers: the strictest (largest) demand wins, which
        // is the container-count equivalent of taking the minimum latency
        // target (§2.3).
        for (const auto &[id, ms_alloc] : alloc.perMicroservice) {
            auto it = plan.containers.find(id);
            if (it == plan.containers.end())
                plan.containers.emplace(id, ms_alloc.containers);
            else
                it->second = std::max(it->second, ms_alloc.containers);
        }
        plan.services.push_back(std::move(alloc));
    }
    finalize(plan);
    return plan;
}

GlobalPlan
MultiplexingPlanner::planPriority(const std::vector<ServiceSpec> &services,
                                  const Interference &itf) const
{
    GlobalPlan plan;
    plan.policy = SharingPolicy::Priority;
    plan.feasible = true;

    const auto shared = sharedMicroservices(services);

    // Step 1: initial independent solve to obtain initial latency targets
    // at shared microservices.
    std::unordered_map<ServiceId, ServiceAllocation> initial;
    for (const ServiceSpec &svc : services) {
        ServiceScalingRequest request;
        request.graph = svc.graph;
        request.slaMs = svc.slaMs;
        request.workload = svc.workload;
        ServiceAllocation alloc = solver_.solve(request, itf);
        if (!alloc.feasible) {
            plan.feasible = false;
            plan.infeasibleReason = alloc.infeasibleReason;
        }
        initial.emplace(svc.id, std::move(alloc));
    }

    // Step 2: per shared microservice, order services by ascending
    // initial latency target (lower target => more latency-sensitive
    // service => higher priority).
    for (const auto &[ms_id, users] : shared) {
        std::vector<std::pair<double, ServiceId>> ranked;
        for (ServiceId svc_id : users) {
            const ServiceAllocation &alloc = initial.at(svc_id);
            auto it = alloc.perMicroservice.find(ms_id);
            const double target = it != alloc.perMicroservice.end()
                                      ? it->second.latencyTargetMs
                                      : svc_id; // infeasible: stable order
            ranked.emplace_back(target, svc_id);
        }
        std::sort(ranked.begin(), ranked.end());
        std::vector<ServiceId> order;
        order.reserve(ranked.size());
        for (const auto &[target, svc_id] : ranked)
            order.push_back(svc_id);
        plan.priorityOrder.emplace(ms_id, std::move(order));
    }

    // Step 3: modified workloads. Service with the k-th highest priority
    // at shared microservice i sees sum_{l<=k} gamma_{l,i}.
    std::unordered_map<ServiceId, std::unordered_map<MicroserviceId, double>>
        overrides;
    std::unordered_map<ServiceId, const ServiceSpec *> spec_of;
    for (const ServiceSpec &svc : services)
        spec_of.emplace(svc.id, &svc);

    for (const auto &[ms_id, order] : plan.priorityOrder) {
        double cumulative = 0.0;
        for (ServiceId svc_id : order) {
            const ServiceSpec &svc = *spec_of.at(svc_id);
            const auto workloads = svc.graph->workloads(svc.workload);
            cumulative += workloads.at(ms_id);
            overrides[svc_id][ms_id] = cumulative;
        }
    }

    // Step 4: final per-service solve with modified workloads; deployed
    // shared containers take the maximum demand over services.
    for (const ServiceSpec &svc : services) {
        ServiceScalingRequest request;
        request.graph = svc.graph;
        request.slaMs = svc.slaMs;
        request.workload = svc.workload;
        auto ov_it = overrides.find(svc.id);
        if (ov_it != overrides.end())
            request.workloadOverride = &ov_it->second;
        ServiceAllocation alloc = solver_.solve(request, itf);
        if (!alloc.feasible) {
            plan.feasible = false;
            plan.infeasibleReason = alloc.infeasibleReason;
        }
        for (const auto &[id, ms_alloc] : alloc.perMicroservice) {
            auto it = plan.containers.find(id);
            if (it == plan.containers.end())
                plan.containers.emplace(id, ms_alloc.containers);
            else
                it->second = std::max(it->second, ms_alloc.containers);
        }
        plan.services.push_back(std::move(alloc));
    }
    finalize(plan);
    return plan;
}

} // namespace erms
