/**
 * @file
 * LatencyTargetSolver — the Latency Target Computation component
 * (§4.2, §5.3.1). For one service it:
 *
 *  1. derives per-microservice workloads from the service request rate,
 *  2. builds the merge tree with interval-2 (queueing regime) bands,
 *  3. unfolds the SLA into per-microservice latency targets (Eq. (5)),
 *  4. checks each target against the cutoff latency; any microservice
 *     whose target falls below it would actually operate in interval 1,
 *     so the solver re-runs once with interval-1 bands for those
 *     microservices (at most two passes per graph, §5.3.1),
 *  5. converts targets to container counts n_i = A_i / (T_i - b_i),
 *     rounded up.
 */

#ifndef ERMS_SCALING_SOLVER_HPP
#define ERMS_SCALING_SOLVER_HPP

#include <unordered_map>

#include "graph/dependency_graph.hpp"
#include "model/catalog.hpp"
#include "model/resource.hpp"
#include "scaling/plan.hpp"

namespace erms {

/**
 * Tunable design choices of the solver, exposed for the ablation bench
 * (`bench_ablation_design`). Defaults reproduce the shipped behaviour.
 */
struct SolverOptions
{
    /** Refinement iterations (2 = the paper's literal two-pass §5.3.1;
     *  the default iterates to a fixed point). */
    int maxRefinementPasses = 8;
    /** Slope-trust rule: loads are trusted while the fitted model's
     *  predicted latency stays below this multiple of the knee
     *  latency. */
    double trustLatencyFactor = 3.0;
    /** Absolute backstop on per-container load, as a multiple of the
     *  fitted cutoff workload. */
    double cutoffBackstopFactor = 1.15;
};

/** Inputs describing one service to scale. */
struct ServiceScalingRequest
{
    const DependencyGraph *graph = nullptr;
    double slaMs = 0.0;
    /** Request arrival rate at the service's root (requests/minute). */
    RequestsPerMinute workload = 0.0;
    /**
     * Optional override of per-microservice workloads, used by the
     * multiplexing planner to inject priority-modified workloads at
     * shared microservices. Microservices absent from the map fall back
     * to graph-derived workloads.
     */
    const std::unordered_map<MicroserviceId, double> *workloadOverride =
        nullptr;
};

/**
 * Closed-form optimal latency-target and container-count solver for a
 * single service. Stateless apart from catalog/capacity references.
 */
class LatencyTargetSolver
{
  public:
    LatencyTargetSolver(const MicroserviceCatalog &catalog,
                        ClusterCapacity capacity,
                        SolverOptions options = {});

    /**
     * Solve the basic scaling model for one service under the given
     * cluster-average interference. Never throws for infeasible SLAs;
     * the result carries feasible=false instead.
     */
    ServiceAllocation solve(const ServiceScalingRequest &request,
                            const Interference &itf) const;

  private:
    struct BandChoice
    {
        LatencyBand band{};
        Interval interval = Interval::AboveCutoff;
    };

    /** One merge + unfold pass with fixed per-microservice bands. */
    std::unordered_map<MicroserviceId, double>
    solvePass(const DependencyGraph &graph,
              const std::unordered_map<MicroserviceId, double> &workloads,
              const std::unordered_map<MicroserviceId, BandChoice> &bands,
              double sla_ms) const;

    const MicroserviceCatalog &catalog_;
    ClusterCapacity capacity_;
    SolverOptions options_;
};

} // namespace erms

#endif // ERMS_SCALING_SOLVER_HPP
