/**
 * @file
 * MultiplexingPlanner — cluster-wide scaling across services that share
 * microservices (§4.3, §5.3.2).
 *
 * Under SharingPolicy::Priority (Erms):
 *  1. every service is solved independently to obtain *initial* latency
 *     targets;
 *  2. at each shared microservice, services are prioritized by ascending
 *     initial latency target (a low target signals latency-sensitive
 *     company on the path — serve it first);
 *  3. every service is re-solved with *modified workloads*: the service
 *     with the k-th highest priority at shared microservice i sees
 *     sum_{l<=k} gamma_{l,i} — its own traffic plus everything scheduled
 *     ahead of it (Eqs. (13)-(14));
 *  4. the deployed container count of a shared microservice is the
 *     maximum demanded by any service, which satisfies every priority
 *     level's constraint.
 *
 * FcfsSharing solves each service against the *total* workload at shared
 * microservices (equivalent to taking the minimum latency target, §2.3)
 * and NonSharing partitions containers per service (sums demands).
 */

#ifndef ERMS_SCALING_MULTIPLEXING_HPP
#define ERMS_SCALING_MULTIPLEXING_HPP

#include <string>
#include <vector>

#include "scaling/solver.hpp"

namespace erms {

/** One online service submitted to the planner. */
struct ServiceSpec
{
    ServiceId id = kInvalidService;
    std::string name;
    const DependencyGraph *graph = nullptr;
    double slaMs = 0.0;
    RequestsPerMinute workload = 0.0;
};

/** Cluster-wide planner handling microservice sharing. */
class MultiplexingPlanner
{
  public:
    MultiplexingPlanner(const MicroserviceCatalog &catalog,
                        ClusterCapacity capacity,
                        SolverOptions options = {});

    /** Produce the global plan under the chosen sharing policy. */
    GlobalPlan plan(const std::vector<ServiceSpec> &services,
                    const Interference &itf,
                    SharingPolicy policy = SharingPolicy::Priority) const;

    /**
     * Microservices appearing in more than one submitted service, with
     * the sharing services listed in submission order.
     */
    static std::unordered_map<MicroserviceId, std::vector<ServiceId>>
    sharedMicroservices(const std::vector<ServiceSpec> &services);

  private:
    GlobalPlan planPriority(const std::vector<ServiceSpec> &services,
                            const Interference &itf) const;
    GlobalPlan planFcfs(const std::vector<ServiceSpec> &services,
                        const Interference &itf) const;
    GlobalPlan planNonSharing(const std::vector<ServiceSpec> &services,
                              const Interference &itf) const;

    /** Fill plan totals from per-service allocations + container map. */
    void finalize(GlobalPlan &plan) const;

    const MicroserviceCatalog &catalog_;
    ClusterCapacity capacity_;
    LatencyTargetSolver solver_;
};

} // namespace erms

#endif // ERMS_SCALING_MULTIPLEXING_HPP
