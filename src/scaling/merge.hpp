/**
 * @file
 * Graph merge (Algorithm 1, §4.2): collapse a dependency graph with
 * parallel structure into virtual microservices so the closed-form
 * latency-target allocation of Eq. (5) applies.
 *
 * Each microservice i contributes the workload-scaled latency relation
 * L_i = A_i / n_i + b_i with A_i = a_i * gamma_i. Merging rules:
 *
 *  - Sequential (Eqs. (6)-(9)): for children executing one after another,
 *      sqrtAR   = sum_j sqrt(A_j R_j)
 *      sqrtAoR  = sum_j sqrt(A_j / R_j)
 *      A* = sqrtAR * sqrtAoR,  R* = sqrtAR / sqrtAoR,  b* = sum_j b_j.
 *    (Equivalent to the paper's a*, R* with the workload folded in; the
 *    invariant A* R* = (sum_j sqrt(A_j R_j))^2 gives the exact minimum
 *    resource usage for any shared latency budget.)
 *
 *  - Parallel (Eqs. (10)-(12)): optimal targets across parallel branches
 *    are equal, so
 *      A** = sum_j A_j,  b** = max_j b_j,
 *      R** = sum_j w_j R_j / sum_j w_j with w_j = A_j
 *    (the paper weights by n_j; n_j is proportional to A_j when branch
 *    intercepts match, which makes this the same expression without
 *    needing the not-yet-known n_j).
 *
 * The merge tree also remembers its structure so computed targets can be
 * *unfolded* back onto real microservices (Fig. 8).
 */

#ifndef ERMS_SCALING_MERGE_HPP
#define ERMS_SCALING_MERGE_HPP

#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "graph/dependency_graph.hpp"

namespace erms {

/** Workload-scaled latency parameters of one (real or virtual) node. */
struct MergeParams
{
    double A = 0.0; ///< a_i * gamma_i (ms)
    double b = 0.0; ///< intercept (ms)
    double R = 0.0; ///< per-container dominant resource demand
};

/**
 * Node of the merge tree. Leaves are real microservices; internal nodes
 * are the virtual microservices invented by Algorithm 1.
 */
struct MergeNode
{
    enum class Kind { Real, Sequential, Parallel };

    Kind kind = Kind::Real;
    MicroserviceId real = kInvalidMicroservice; ///< valid for Kind::Real
    std::vector<int> children;                  ///< indices into the tree
    MergeParams params{};
};

/**
 * Result of merging one dependency graph: an index-addressed tree whose
 * root virtual microservice summarizes the whole service.
 */
class MergeTree
{
  public:
    /**
     * Build the merge tree for a graph.
     *
     * @param graph   the service's dependency graph
     * @param params  per-real-microservice {A, b, R}; must contain every
     *                node of the graph
     */
    MergeTree(const DependencyGraph &graph,
              const std::unordered_map<MicroserviceId, MergeParams> &params);

    const MergeNode &node(int index) const;
    int rootIndex() const { return root_; }
    const MergeNode &root() const { return node(root_); }
    std::size_t size() const { return nodes_.size(); }

    /**
     * Unfold a latency budget from the root down to real microservices
     * (Fig. 8): sequential children split the budget per Eq. (5);
     * parallel children all inherit it.
     *
     * @param total_budget_ms latency budget for the root (the SLA)
     * @return per-real-microservice latency targets (ms)
     * @throws InfeasibleError if total_budget_ms <= the root intercept.
     */
    std::unordered_map<MicroserviceId, double>
    unfoldTargets(double total_budget_ms) const;

  private:
    int mergeMicroservice(
        const DependencyGraph &graph, MicroserviceId id,
        const std::unordered_map<MicroserviceId, MergeParams> &params);

    int addReal(MicroserviceId id, const MergeParams &params);
    int addSequential(std::vector<int> children);
    int addParallel(std::vector<int> children);

    std::vector<MergeNode> nodes_;
    int root_ = -1;
};

/** Sequential combination of Eqs. (7)-(9) over arbitrary arity. */
MergeParams mergeSequential(const std::vector<MergeParams> &parts);

/** Parallel combination of Eqs. (11)-(12) over arbitrary arity. */
MergeParams mergeParallel(const std::vector<MergeParams> &parts);

} // namespace erms

#endif // ERMS_SCALING_MERGE_HPP
