#include "solver.hpp"

#include <cmath>

#include "common/error.hpp"
#include "scaling/merge.hpp"

namespace erms {

double
ServiceAllocation::totalResource() const
{
    double total = 0.0;
    for (const auto &[id, alloc] : perMicroservice)
        total += alloc.containers * alloc.resourceDemand;
    return total;
}

int
ServiceAllocation::totalContainers() const
{
    int total = 0;
    for (const auto &[id, alloc] : perMicroservice)
        total += alloc.containers;
    return total;
}

LatencyTargetSolver::LatencyTargetSolver(const MicroserviceCatalog &catalog,
                                         ClusterCapacity capacity,
                                         SolverOptions options)
    : catalog_(catalog), capacity_(capacity), options_(options)
{
    ERMS_ASSERT(options.maxRefinementPasses >= 1);
    ERMS_ASSERT(options.trustLatencyFactor >= 1.0);
    ERMS_ASSERT(options.cutoffBackstopFactor > 0.0);
}

std::unordered_map<MicroserviceId, double>
LatencyTargetSolver::solvePass(
    const DependencyGraph &graph,
    const std::unordered_map<MicroserviceId, double> &workloads,
    const std::unordered_map<MicroserviceId, BandChoice> &bands,
    double sla_ms) const
{
    std::unordered_map<MicroserviceId, MergeParams> params;
    params.reserve(graph.size());
    for (MicroserviceId id : graph.nodes()) {
        const BandChoice &choice = bands.at(id);
        MergeParams p;
        p.A = choice.band.a * workloads.at(id);
        p.b = choice.band.b;
        p.R = dominantShare(catalog_.profile(id).resources, capacity_);
        params.emplace(id, p);
    }
    MergeTree tree(graph, params);
    return tree.unfoldTargets(sla_ms);
}

ServiceAllocation
LatencyTargetSolver::solve(const ServiceScalingRequest &request,
                           const Interference &itf) const
{
    ERMS_ASSERT_MSG(request.graph != nullptr, "request requires a graph");
    const DependencyGraph &graph = *request.graph;

    ServiceAllocation result;
    result.service = graph.service();
    result.slaMs = request.slaMs;

    // Per-microservice workloads: graph-derived, then overridden where the
    // multiplexing planner injected priority-modified values.
    auto workloads = graph.workloads(request.workload);
    if (request.workloadOverride) {
        for (const auto &[id, gamma] : *request.workloadOverride) {
            if (workloads.count(id))
                workloads[id] = gamma;
        }
    }

    // Pass 1: the paper starts from interval-2 parameters (high-workload
    // regime, cheaper in resources).
    std::unordered_map<MicroserviceId, BandChoice> bands;
    bands.reserve(graph.size());
    for (MicroserviceId id : graph.nodes()) {
        BandChoice choice;
        choice.interval = Interval::AboveCutoff;
        choice.band = catalog_.model(id).band(itf, Interval::AboveCutoff);
        bands.emplace(id, choice);
    }

    // §5.3.1 refinement, iterated to a fixed point: after each pass, a
    // target below a microservice's cutoff latency means it would really
    // operate in interval 1, so its band switches and the targets are
    // recomputed. The paper stops after two passes; we iterate until the
    // classification stabilizes (almost always 1-2 passes) with a small
    // cap, which also handles fitted models whose interval-2 intercepts
    // aggregate past a tight SLA (fall back to all-interval-1).
    std::unordered_map<MicroserviceId, double> targets;
    bool have_targets = false;
    for (int pass = 0; pass < options_.maxRefinementPasses; ++pass) {
        try {
            targets = solvePass(graph, workloads, bands, request.slaMs);
            have_targets = true;
        } catch (const InfeasibleError &err) {
            bool all_below = true;
            for (const auto &[id, choice] : bands)
                all_below &= choice.interval == Interval::BelowCutoff;
            if (all_below) {
                result.feasible = false;
                result.infeasibleReason = err.what();
                return result;
            }
            // Retry at the conservative (light-load) end.
            for (MicroserviceId id : graph.nodes()) {
                bands[id].interval = Interval::BelowCutoff;
                bands[id].band =
                    catalog_.model(id).band(itf, Interval::BelowCutoff);
            }
            have_targets = false;
            continue;
        }
        // Switching is one-directional (as in §5.3.1): a microservice
        // whose target falls below its cutoff latency moves to the
        // interval-1 band and stays there. This guarantees termination
        // and avoids oscillation between band assignments.
        bool changed = false;
        for (MicroserviceId id : graph.nodes()) {
            const auto &model = catalog_.model(id);
            if (bands[id].interval == Interval::AboveCutoff &&
                targets.at(id) < model.cutoffLatency(itf)) {
                bands[id].interval = Interval::BelowCutoff;
                bands[id].band = model.band(itf, Interval::BelowCutoff);
                changed = true;
            }
        }
        if (!changed)
            break;
    }
    if (!have_targets) {
        result.feasible = false;
        result.infeasibleReason = "latency target computation diverged";
        return result;
    }

    // Convert targets to container counts.
    for (MicroserviceId id : graph.nodes()) {
        const BandChoice &choice = bands.at(id);
        MicroserviceAllocation alloc;
        alloc.latencyTargetMs = targets.at(id);
        alloc.workload = workloads.at(id);
        alloc.band = choice.band;
        alloc.intervalUsed = choice.interval;
        alloc.resourceDemand =
            dominantShare(catalog_.profile(id).resources, capacity_);

        // Size containers by inverting the *piecewise* model at the
        // target: this guarantees the target is met under the model even
        // when the band assumed during merging disagrees with the
        // realized operating interval (§5.3.1 stops after two passes).
        const auto &model = catalog_.model(id);
        double max_load = model.maxLoadForLatency(alloc.latencyTargetMs,
                                                  itf);
        if (max_load <= 0.0) {
            result.feasible = false;
            result.infeasibleReason =
                "latency target of " +
                std::to_string(alloc.latencyTargetMs) +
                "ms at microservice " + catalog_.name(id) +
                " lies below its model floor";
            return result;
        }
        // Linear bands only describe the neighbourhood of the knee; a
        // target bought far beyond it would sit past queueing saturation
        // where no finite latency exists. Trust the fitted steep
        // interval up to 3x the knee latency (a steep, accurate fit
        // authorizes only slightly-past-knee loads on its own), with an
        // absolute backstop at 1.15x the cutoff workload.
        const double sigma = model.cutoff(itf);
        const double trust_latency =
            options_.trustLatencyFactor * model.cutoffLatency(itf);
        double trust_load = model.maxLoadForLatency(trust_latency, itf);
        if (trust_load <= 0.0)
            trust_load = sigma;
        max_load = std::min({max_load, trust_load,
                             options_.cutoffBackstopFactor * sigma});
        alloc.containersFractional = alloc.workload / max_load;
        alloc.containers = std::max(
            1, static_cast<int>(std::ceil(alloc.containersFractional -
                                          1e-9)));
        result.perMicroservice.emplace(id, alloc);
    }

    // Final validation: §5.3.1 allows at most two passes, so a very
    // tight SLA can leave interval-2 extrapolation claiming latencies
    // (even negative targets) no allocation can deliver. Reject the
    // solution unless the *model-predicted* end-to-end latency at the
    // deployed allocation meets the SLA.
    std::unordered_map<MicroserviceId, double> predicted;
    predicted.reserve(result.perMicroservice.size());
    for (const auto &[id, alloc] : result.perMicroservice) {
        const double per_container =
            alloc.workload / std::max(1, alloc.containers);
        predicted[id] = catalog_.model(id).latency(per_container, itf);
    }
    const double e2e = endToEndLatency(graph, predicted);
    if (e2e > request.slaMs * 1.01 + 1e-9) {
        result.feasible = false;
        result.infeasibleReason =
            "model-predicted end-to-end latency " + std::to_string(e2e) +
            "ms exceeds the SLA of " + std::to_string(request.slaMs) +
            "ms at the computed allocation";
        return result;
    }

    result.feasible = true;
    return result;
}

} // namespace erms
