/**
 * @file
 * Shard partitioning: split a service catalog and a host fleet into K
 * shards so that each shard can run as an independent `Simulation`
 * (the scale-out path to the paper's production setting — 500+ online
 * services on thousands of hosts — which one event loop cannot hold).
 *
 * Services sharing a microservice must land in the same shard: sharing
 * is exactly the interaction Erms models (priority scheduling at shared
 * nodes, §5.3.2), so the partition operates on connected components of
 * the service–microservice bipartite graph. Components are bin-packed
 * onto shards by weight (distinct microservice count) using LPT with
 * deterministic tie-breaks, and the host fleet is divided
 * weight-proportionally (largest remainder, every shard >= 1 host).
 *
 * Determinism contract (pinned by tests/test_shard.cpp and the golden
 * differential): planShards is a pure function of its inputs — no RNG,
 * no hash-order dependence — and shard seeds derive from the base seed
 * via deriveRunSeed(base, shard_index), except K == 1 which keeps the
 * base seed verbatim so a single-shard run is byte-identical to the
 * unsharded simulator. See docs/sharding.md.
 */

#ifndef ERMS_SHARD_PARTITION_HPP
#define ERMS_SHARD_PARTITION_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "graph/dependency_graph.hpp"
#include "sim/simulation.hpp"

namespace erms::shard {

/** One shard of the partitioned cluster. */
struct ShardSpec
{
    /** Shard index in [0, shardCount). */
    int index = 0;
    /** Positions into the input service list (ascending), preserving
     *  the caller's registration order within the shard. */
    std::vector<std::size_t> services;
    /** Microservices owned by this shard (id ascending). */
    std::vector<MicroserviceId> microservices;
    /** Hosts assigned to this shard (its Simulation's hostCount). */
    int hostCount = 0;
    /** First global host id of this shard: a local host h maps to the
     *  cluster-wide id h + hostOffset. */
    int hostOffset = 0;
    /** Run seed of this shard's Simulation. */
    std::uint64_t seed = 0;
};

/** Complete partition of services, microservices and hosts. */
struct ShardPlan
{
    int shardCount = 0;
    std::vector<ShardSpec> shards;
    /** Owning shard per service id. */
    std::unordered_map<ServiceId, int> shardOfService;
    /** Owning shard per microservice id (only microservices reachable
     *  from some service's dependency graph appear). */
    std::unordered_map<MicroserviceId, int> shardOfMicroservice;
};

/**
 * Partition `services` (each with its dependency graph attached) and
 * `total_hosts` hosts into `shard_count` shards. shard_count is clamped
 * to [1, #components]: with fewer components than requested shards the
 * surplus shards would be empty, so the plan returns only non-empty
 * shards (shardCount reflects the clamp).
 * @throws ErmsError when services lack graphs, the service list is
 *         empty, or total_hosts < the effective shard count.
 */
ShardPlan planShards(const std::vector<ServiceWorkload> &services,
                     int total_hosts, int shard_count,
                     std::uint64_t base_seed);

/**
 * Shard count requested via the ERMS_SHARDS environment variable:
 * 0 when unset/empty/invalid (sharding off), otherwise the value
 * clamped to >= 1. ERMS_SHARDS=1 routes execution through the sharded
 * coordinator with one shard — the configuration the golden
 * differential pins byte-identical to the unsharded engine.
 */
int shardsRequested();

} // namespace erms::shard

#endif // ERMS_SHARD_PARTITION_HPP
