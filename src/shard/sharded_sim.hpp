/**
 * @file
 * ShardedSimulation — K independent shard Simulations advancing in
 * minute lockstep on a ParallelRunner, with per-shard telemetry merged
 * into one cluster-wide view between steps. This is the scale-out path
 * to the paper's production setting (500+ services, thousands of
 * hosts): each shard owns a connected component set of the
 * service–microservice graph plus a slice of the host fleet, so its
 * event loop touches a working set small enough to stay cache-resident
 * while the coordinator presents the union to controllers.
 *
 * Execution model (docs/sharding.md has the diagrams):
 *
 *   beginRun all shards (coordinated-pause mode)
 *   repeat until every shard reports horizon:
 *     - advanceToMinuteBoundary() on every shard (runner tasks):
 *       each resumes its paused minute — deferred minute callback,
 *       next boundary post — then drains to the next boundary pause
 *     - coordinator merges any new per-shard telemetry scrapes into
 *       the ShardedTelemetryView (min-over-shards generations, so the
 *       merged stream only ever contains cluster-complete scrapes)
 *
 * Controllers run inside each shard's resume at the exact
 * event-sequence position of an inline minute callback, observing the
 * merged view (frozen between rounds, so concurrent shard callbacks
 * read it safely). Decisions apply to the shard's own Simulation —
 * the coordinator routes any cross-shard mutation (setContainerCount)
 * to the owning shard between rounds.
 *
 * Determinism contract:
 *  - K == 1 is byte-identical to an unsharded Simulation::run() (same
 *    seed, same event order, same metrics bytes) — the golden
 *    differential pins this;
 *  - for fixed K, results are byte-identical across runner worker
 *    counts (shards share no mutable state during a round);
 *  - shard seeds derive from the base seed via deriveRunSeed.
 */

#ifndef ERMS_SHARD_SHARDED_SIM_HPP
#define ERMS_SHARD_SHARDED_SIM_HPP

#include <functional>
#include <memory>
#include <vector>

#include "runner/parallel_runner.hpp"
#include "shard/merge.hpp"
#include "shard/partition.hpp"
#include "sim/simulation.hpp"
#include "telemetry/monitor.hpp"
#include "telemetry/view.hpp"

namespace erms::shard {

/** Configuration of one sharded run. */
struct ShardedSimConfig
{
    /** Cluster-wide simulation parameters; hostCount is the TOTAL host
     *  fleet (split across shards) and seed the base seed shards derive
     *  theirs from. */
    SimConfig base{};
    /** Requested shard count (clamped to the component count). */
    int shards = 1;
    /** Worker pool the lockstep rounds run on (0 = env/hardware). */
    RunnerOptions runner{};
    /** Attach a SimMonitor per shard and merge scrapes into the
     *  cluster-wide telemetry view. */
    bool telemetry = false;
    /** Monitor knobs shared by every shard (scrape cadence must match
     *  for generation-wise merging). */
    telemetry::MonitorConfig monitor{};
};

/**
 * Cluster-wide TelemetryView over merged per-shard scrape snapshots.
 * The coordinator appends one merged snapshot per cluster-complete
 * scrape generation between lockstep rounds; all query math is
 * inherited from SnapshotTelemetryView, so controllers interpret the
 * merged stream exactly as they would a single monitor's.
 */
class ShardedTelemetryView : public telemetry::SnapshotTelemetryView
{
  public:
    /** Append the next merged scrape generation (coordinator only,
     *  never concurrent with shard callbacks). */
    void
    append(telemetry::TelemetrySnapshot snapshot)
    {
        merged_.push_back(std::move(snapshot));
    }

    std::size_t generations() const { return merged_.size(); }

  protected:
    const std::vector<telemetry::TelemetrySnapshot> &
    visibleSnapshots() const override
    {
        return merged_;
    }

  private:
    std::vector<telemetry::TelemetrySnapshot> merged_;
};

/** Coordinator owning K shard Simulations (see file doc). */
class ShardedSimulation
{
  public:
    ShardedSimulation(const MicroserviceCatalog &catalog,
                      ShardedSimConfig config);
    ~ShardedSimulation();

    ShardedSimulation(const ShardedSimulation &) = delete;
    ShardedSimulation &operator=(const ShardedSimulation &) = delete;

    // --- assembly (before finalization) --------------------------------

    /** Register a service (must precede any routing call: the shard
     *  partition is computed from the full service list). */
    void addService(ServiceWorkload service);

    /** Queue uniform background load for every host of every shard. */
    void setBackgroundLoadAll(double cpu_util, double mem_util);

    // --- routing mutators (finalize the partition on first use) --------

    /** Split a cluster-wide plan by ownership and apply each slice to
     *  its shard (container counts + priority orders). */
    void applyPlan(const GlobalPlan &plan);

    /** Fault injection, split across shards: Poisson rates scale by
     *  each shard's host share (a shard holding 1/4 of the fleet draws
     *  1/4 of the crashes); K == 1 keeps config and seed verbatim. */
    void setFaultConfig(const FaultConfig &config);

    /** Resilience policy, identical on every shard. */
    void setResilienceConfig(const ResilienceConfig &config);

    /** Scale one microservice through its owning shard. */
    void setContainerCount(MicroserviceId ms, int count);

    /** Live containers of a microservice (0 when unowned). */
    int containerCount(MicroserviceId ms);

    /** Per-minute controller for one shard, invoked at that shard's
     *  resume point (see file doc). Build it from shardLocalPlan() /
     *  shard-owned services so it only touches owned state. */
    void setShardMinuteController(
        int k, std::function<void(Simulation &, int)> controller);

    // --- structure ------------------------------------------------------

    /** The computed partition (finalizes on first call). */
    const ShardPlan &shardPlan();

    int shardCount();

    /** Shard k's Simulation (test/bench observability). */
    Simulation &shard(int k);

    /** Slice of the last applyPlan() restricted to shard k's services
     *  and microservices (empty plan when none was applied). */
    GlobalPlan shardLocalPlan(int k);

    /** Cluster-wide telemetry view (null unless config.telemetry).
     *  Safe to hand to controllers on any shard. */
    std::shared_ptr<const telemetry::TelemetryView> mergedView();

    // --- execution and results -----------------------------------------

    /** Run all shards to the horizon in minute lockstep. Once only. */
    void run();

    /** Merged cluster-wide metrics (after run()). */
    const SimMetrics &metrics() const;

    /** Merged cluster-wide snapshot of the latest published per-shard
     *  snapshots (host ids remapped to cluster-wide). */
    ClusterSnapshot clusterSnapshot() const;

    /** Total events dispatched across shards (after run()). */
    std::uint64_t eventsDispatched() const;

  private:
    void ensureFinalized();
    /** Merge scrape generations every shard has completed. */
    void mergeNewTelemetry();

    const MicroserviceCatalog &catalog_;
    ShardedSimConfig config_;

    // queued until finalization
    std::vector<ServiceWorkload> pendingServices_;
    bool hasBackground_ = false;
    double bgCpu_ = 0.0;
    double bgMem_ = 0.0;

    bool finalized_ = false;
    bool ran_ = false;
    ShardPlan plan_;
    std::vector<std::unique_ptr<telemetry::SimMonitor>> monitors_;
    std::vector<std::unique_ptr<Simulation>> sims_;
    std::shared_ptr<ShardedTelemetryView> mergedView_;
    std::size_t mergedGenerations_ = 0;
    GlobalPlan appliedPlan_;
    bool hasPlan_ = false;
    SimMetrics mergedMetrics_;
    bool metricsMerged_ = false;
};

} // namespace erms::shard

#endif // ERMS_SHARD_SHARDED_SIM_HPP
