/**
 * @file
 * Cluster-wide merging of per-shard state: telemetry snapshots, cluster
 * snapshots and simulation metrics from K independent shard simulations
 * combine into one view of the whole cluster.
 *
 * Every merge rides the library's already-proven-associative paths —
 * counter addition, Histogram bucket addition (property-pinned
 * associative/commutative), StreamingStats::merge (Chan's parallel
 * update), SampleSet concatenation — so the merged result is exactly
 * what one monitor observing all shards would have recorded. Host ids
 * are shard-local inside each Simulation; merging remaps them to
 * cluster-wide ids by the shard's hostOffset (docs/sharding.md has the
 * full dataflow diagram).
 *
 * Determinism: merges iterate shards in index order and sort outputs by
 * the same (name, labels) / id keys the unsharded paths use, so the
 * merged view is byte-stable across runner worker counts.
 */

#ifndef ERMS_SHARD_MERGE_HPP
#define ERMS_SHARD_MERGE_HPP

#include <vector>

#include "shard/partition.hpp"
#include "sim/metrics.hpp"
#include "sim/simulation.hpp"
#include "telemetry/registry.hpp"

namespace erms::shard {

/**
 * Merge one scrape generation of per-shard telemetry snapshots (entry k
 * from shard k, shard index order) into a cluster-wide snapshot:
 *  - series labelled {host=h} are relabelled to h + hostOffset[k], so
 *    shard-local gauges become disjoint cluster series;
 *  - service/microservice series are disjoint by construction (each id
 *    is owned by exactly one shard) and pass through;
 *  - series colliding on (name, labels) — only the label-free
 *    fault-schedule gauges in the simulator's catalog — combine
 *    kind-wise: counters and histogram buckets/sums add, gauges add
 *    (every colliding gauge is cluster-additive).
 * The merged series list is re-sorted by (name, labels) — the same
 * order MetricsRegistry::snapshot emits — and stamped with the newest
 * shard scrape time.
 */
telemetry::TelemetrySnapshot
mergeTelemetrySnapshots(const std::vector<telemetry::TelemetrySnapshot> &parts,
                        const ShardPlan &plan);

/**
 * Merge per-shard cluster snapshots into a whole-cluster snapshot:
 * hosts remap by hostOffset and concatenate (id ascending), deployment
 * samples concatenate (microservice ascending; disjoint across shards).
 * `sequence` is the minimum across shards (0 until every shard has
 * published) and `at` the newest shard publish time.
 */
ClusterSnapshot
mergeClusterSnapshots(const std::vector<ClusterSnapshot> &parts,
                      const ShardPlan &plan);

/**
 * Merge per-shard run metrics into whole-cluster metrics: per-service
 * and per-microservice tables are disjoint unions, profiling records
 * re-sort by (minute, microservice), scalar and fault counters add.
 */
SimMetrics mergeMetrics(const std::vector<const SimMetrics *> &parts);

} // namespace erms::shard

#endif // ERMS_SHARD_MERGE_HPP
