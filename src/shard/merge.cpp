#include "merge.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"

namespace erms::shard {

namespace {

using telemetry::Labels;
using telemetry::MetricKind;
using telemetry::SeriesSnapshot;
using telemetry::TelemetrySnapshot;

/** Rewrite a shard-local {host=h} label to the cluster-wide id. */
Labels
remapHostLabels(const Labels &labels, int host_offset)
{
    if (host_offset == 0)
        return labels;
    Labels out = labels;
    for (auto &[key, value] : out) {
        if (key == "host") {
            const long local = std::stol(value);
            value = std::to_string(local + host_offset);
        }
    }
    return out;
}

/** Accumulate `part` into `into` (same name/labels/kind). */
void
accumulateSeries(SeriesSnapshot &into, const SeriesSnapshot &part)
{
    ERMS_ASSERT_MSG(into.kind == part.kind,
                    "shard series collide with mismatched kinds");
    switch (into.kind) {
    case MetricKind::Counter:
        into.counterValue += part.counterValue;
        break;
    case MetricKind::Gauge:
        // Only cluster-additive gauges (the label-free fault-schedule
        // sizes) can collide across shards; owned-entity gauges carry
        // service/microservice/host labels and stay disjoint.
        into.gaugeValue += part.gaugeValue;
        break;
    case MetricKind::Histogram:
        ERMS_ASSERT_MSG(into.boundaries == part.boundaries,
                        "shard histograms collide with mismatched buckets");
        for (std::size_t b = 0; b < into.bucketCounts.size(); ++b)
            into.bucketCounts[b] += part.bucketCounts[b];
        into.count += part.count;
        into.sum += part.sum;
        break;
    }
}

} // namespace

telemetry::TelemetrySnapshot
mergeTelemetrySnapshots(const std::vector<TelemetrySnapshot> &parts,
                        const ShardPlan &plan)
{
    ERMS_ASSERT_MSG(parts.size() ==
                        static_cast<std::size_t>(plan.shardCount),
                    "one snapshot per shard required");
    TelemetrySnapshot merged;
    for (int k = 0; k < plan.shardCount; ++k) {
        const TelemetrySnapshot &part = parts[k];
        merged.at = std::max(merged.at, part.at);
        const int offset = plan.shards[k].hostOffset;
        for (const SeriesSnapshot &series : part.series) {
            SeriesSnapshot remapped = series;
            remapped.labels = remapHostLabels(series.labels, offset);
            // Shard-disjoint series dominate; linear probe over the
            // few collision candidates (label-free cluster gauges) is
            // cheaper than a map for the catalog's series counts.
            auto it = std::find_if(
                merged.series.begin(), merged.series.end(),
                [&](const SeriesSnapshot &existing) {
                    return existing.name == remapped.name &&
                           existing.labels == remapped.labels;
                });
            if (it == merged.series.end())
                merged.series.push_back(std::move(remapped));
            else
                accumulateSeries(*it, remapped);
        }
    }
    std::sort(merged.series.begin(), merged.series.end(),
              [](const SeriesSnapshot &a, const SeriesSnapshot &b) {
                  if (a.name != b.name)
                      return a.name < b.name;
                  return a.labels < b.labels;
              });
    return merged;
}

ClusterSnapshot
mergeClusterSnapshots(const std::vector<ClusterSnapshot> &parts,
                      const ShardPlan &plan)
{
    ERMS_ASSERT_MSG(parts.size() ==
                        static_cast<std::size_t>(plan.shardCount),
                    "one cluster snapshot per shard required");
    ClusterSnapshot merged;
    bool first = true;
    for (int k = 0; k < plan.shardCount; ++k) {
        const ClusterSnapshot &part = parts[k];
        merged.at = std::max(merged.at, part.at);
        merged.sequence = first
                              ? part.sequence
                              : std::min(merged.sequence, part.sequence);
        first = false;
        const HostId offset =
            static_cast<HostId>(plan.shards[k].hostOffset);
        for (ClusterSnapshot::HostSample host : part.hosts) {
            host.id += offset;
            merged.hosts.push_back(host);
        }
        for (const ClusterSnapshot::DeploymentSample &dep :
             part.deployments)
            merged.deployments.push_back(dep);
    }
    std::sort(merged.hosts.begin(), merged.hosts.end(),
              [](const ClusterSnapshot::HostSample &a,
                 const ClusterSnapshot::HostSample &b) {
                  return a.id < b.id;
              });
    std::sort(merged.deployments.begin(), merged.deployments.end(),
              [](const ClusterSnapshot::DeploymentSample &a,
                 const ClusterSnapshot::DeploymentSample &b) {
                  return a.ms < b.ms;
              });
    return merged;
}

SimMetrics
mergeMetrics(const std::vector<const SimMetrics *> &parts)
{
    SimMetrics merged;
    for (const SimMetrics *part : parts) {
        ERMS_ASSERT(part != nullptr);
        // Per-service / per-microservice tables are disjoint unions:
        // every id is owned by exactly one shard.
        for (const auto &[service, samples] : part->endToEndMs) {
            ERMS_ASSERT_MSG(merged.endToEndMs.find(service) ==
                                merged.endToEndMs.end(),
                            "service latency tables overlap across shards");
            merged.endToEndMs.emplace(service, samples);
        }
        for (const auto &[service, windows] : part->endToEndByMinute)
            merged.endToEndByMinute.emplace(service, windows);
        for (const auto &[ms, timeline] : part->containerTimeline)
            merged.containerTimeline.emplace(ms, timeline);
        for (const auto &[service, failed] : part->failedByService)
            merged.failedByService[service] += failed;
        merged.profiling.insert(merged.profiling.end(),
                                part->profiling.begin(),
                                part->profiling.end());

        merged.requestsGenerated += part->requestsGenerated;
        merged.requestsCompleted += part->requestsCompleted;
        merged.requestsFailed += part->requestsFailed;
        merged.eventsDispatched += part->eventsDispatched;

        merged.faults.containerCrashes += part->faults.containerCrashes;
        merged.faults.containerRestarts += part->faults.containerRestarts;
        merged.faults.slowdownWindows += part->faults.slowdownWindows;
        merged.faults.firstAttempts += part->faults.firstAttempts;
        merged.faults.callRetries += part->faults.callRetries;
        merged.faults.hedgesLaunched += part->faults.hedgesLaunched;
        merged.faults.hedgeWins += part->faults.hedgeWins;
        merged.faults.callTimeouts += part->faults.callTimeouts;
        merged.faults.transientFailures += part->faults.transientFailures;
        merged.faults.crashFailures += part->faults.crashFailures;
        merged.faults.callsFailed += part->faults.callsFailed;
    }
    // Profiling records re-sort into the (minute, microservice) order a
    // single simulation emits, so sharded profiling sweeps read the
    // same way.
    std::stable_sort(merged.profiling.begin(), merged.profiling.end(),
                     [](const ProfilingRecord &a, const ProfilingRecord &b) {
                         if (a.minute != b.minute)
                             return a.minute < b.minute;
                         return a.microservice < b.microservice;
                     });
    return merged;
}

} // namespace erms::shard
