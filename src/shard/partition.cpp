#include "partition.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace erms::shard {

namespace {

/** Union-find over service positions (path halving + size union with
 *  deterministic root choice: smaller index wins ties). */
class UnionFind
{
  public:
    explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1)
    {
        for (std::size_t i = 0; i < n; ++i)
            parent_[i] = i;
    }

    std::size_t
    find(std::size_t x)
    {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }

    void
    unite(std::size_t a, std::size_t b)
    {
        a = find(a);
        b = find(b);
        if (a == b)
            return;
        // Deterministic: larger component absorbs; equal sizes -> the
        // smaller root index absorbs. No rank randomness anywhere.
        if (size_[a] < size_[b] || (size_[a] == size_[b] && b < a))
            std::swap(a, b);
        parent_[b] = a;
        size_[a] += size_[b];
    }

  private:
    std::vector<std::size_t> parent_;
    std::vector<std::size_t> size_;
};

} // namespace

ShardPlan
planShards(const std::vector<ServiceWorkload> &services, int total_hosts,
           int shard_count, std::uint64_t base_seed)
{
    if (services.empty())
        throw ErmsError("planShards: no services to partition");
    for (const ServiceWorkload &svc : services) {
        if (svc.graph == nullptr)
            throw ErmsError("planShards: service " +
                            std::to_string(svc.id) +
                            " has no dependency graph");
    }
    if (shard_count < 1)
        shard_count = 1;

    // 1. Connected components of the service–microservice graph:
    //    services touching a common microservice must co-reside.
    UnionFind uf(services.size());
    std::unordered_map<MicroserviceId, std::size_t> first_user;
    for (std::size_t i = 0; i < services.size(); ++i) {
        for (MicroserviceId ms : services[i].graph->nodes()) {
            auto [it, inserted] = first_user.try_emplace(ms, i);
            if (!inserted)
                uf.unite(it->second, i);
        }
    }

    // Components keyed by root, ordered by their first service position
    // so component identity never depends on hash iteration.
    std::vector<std::vector<std::size_t>> components;
    std::unordered_map<std::size_t, std::size_t> comp_of_root;
    for (std::size_t i = 0; i < services.size(); ++i) {
        const std::size_t root = uf.find(i);
        auto [it, inserted] =
            comp_of_root.try_emplace(root, components.size());
        if (inserted)
            components.emplace_back();
        components[it->second].push_back(i);
    }

    // Component weight = distinct microservices (the event-load proxy
    // the host split uses too).
    struct CompInfo
    {
        std::size_t comp;
        std::size_t weight;
    };
    std::vector<CompInfo> order;
    order.reserve(components.size());
    for (std::size_t c = 0; c < components.size(); ++c) {
        std::vector<MicroserviceId> ms;
        for (std::size_t svc : components[c])
            for (MicroserviceId id : services[svc].graph->nodes())
                ms.push_back(id);
        std::sort(ms.begin(), ms.end());
        ms.erase(std::unique(ms.begin(), ms.end()), ms.end());
        order.push_back({c, ms.size()});
    }

    const int effective =
        std::min<int>(shard_count, static_cast<int>(components.size()));
    if (total_hosts < effective)
        throw ErmsError("planShards: " + std::to_string(total_hosts) +
                        " hosts cannot populate " +
                        std::to_string(effective) + " shards");

    // 2. LPT bin-packing: heaviest component first onto the lightest
    //    shard; ties break toward the earlier component / lower shard.
    std::stable_sort(order.begin(), order.end(),
                     [](const CompInfo &a, const CompInfo &b) {
                         return a.weight > b.weight;
                     });

    ShardPlan plan;
    plan.shardCount = effective;
    plan.shards.resize(effective);
    std::vector<std::size_t> shard_weight(effective, 0);
    std::vector<int> comp_shard(components.size(), 0);
    for (const CompInfo &info : order) {
        int lightest = 0;
        for (int k = 1; k < effective; ++k)
            if (shard_weight[k] < shard_weight[lightest])
                lightest = k;
        comp_shard[info.comp] = lightest;
        shard_weight[lightest] += info.weight;
    }

    // 3. Materialize shard membership in the caller's service order.
    for (std::size_t c = 0; c < components.size(); ++c)
        for (std::size_t svc : components[c])
            plan.shards[comp_shard[c]].services.push_back(svc);
    for (int k = 0; k < effective; ++k) {
        ShardSpec &spec = plan.shards[k];
        spec.index = k;
        std::sort(spec.services.begin(), spec.services.end());
        for (std::size_t svc : spec.services) {
            plan.shardOfService[services[svc].id] = k;
            for (MicroserviceId ms : services[svc].graph->nodes())
                spec.microservices.push_back(ms);
        }
        std::sort(spec.microservices.begin(), spec.microservices.end());
        spec.microservices.erase(std::unique(spec.microservices.begin(),
                                             spec.microservices.end()),
                                 spec.microservices.end());
        for (MicroserviceId ms : spec.microservices)
            plan.shardOfMicroservice[ms] = k;
    }

    // 4. Hosts: weight-proportional largest-remainder split, floor 1.
    //    (K == 1 trivially gets the whole fleet — exact unsharded
    //    geometry, part of the byte-identity contract.)
    std::size_t total_weight = 0;
    for (int k = 0; k < effective; ++k)
        total_weight += shard_weight[k];
    std::vector<int> hosts(effective, 1);
    int assigned = effective;
    std::vector<std::pair<double, int>> remainders; // (-frac, shard)
    for (int k = 0; k < effective; ++k) {
        const double exact =
            total_weight == 0
                ? static_cast<double>(total_hosts) / effective
                : static_cast<double>(total_hosts) * shard_weight[k] /
                      static_cast<double>(total_weight);
        const int extra = std::max(0, static_cast<int>(exact) - 1);
        hosts[k] += extra;
        assigned += extra;
        remainders.emplace_back(-(exact - static_cast<int>(exact)), k);
    }
    std::stable_sort(remainders.begin(), remainders.end());
    for (std::size_t r = 0; assigned < total_hosts; ++assigned) {
        hosts[remainders[r].second] += 1;
        r = (r + 1) % remainders.size();
    }
    // Over-assignment can only come from the floor-of-1 bump; take the
    // surplus back from the largest shards (deterministic order).
    for (int k = 0; assigned > total_hosts; k = (k + 1) % effective) {
        if (hosts[k] > 1) {
            hosts[k] -= 1;
            --assigned;
        }
    }

    int offset = 0;
    for (int k = 0; k < effective; ++k) {
        plan.shards[k].hostCount = hosts[k];
        plan.shards[k].hostOffset = offset;
        offset += hosts[k];
    }

    // 5. Seeds: K == 1 keeps the base seed (byte-identity with the
    //    unsharded simulator); otherwise each shard gets an independent
    //    stream via the runner's closed-form derivation.
    for (int k = 0; k < effective; ++k) {
        plan.shards[k].seed = effective == 1
                                  ? base_seed
                                  : deriveRunSeed(base_seed,
                                                  static_cast<std::size_t>(k));
    }
    return plan;
}

int
shardsRequested()
{
    const char *raw = std::getenv("ERMS_SHARDS");
    if (raw == nullptr || *raw == '\0')
        return 0;
    const int value = std::atoi(raw);
    return value < 1 ? 0 : value;
}

} // namespace erms::shard
