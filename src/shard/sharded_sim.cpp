#include "sharded_sim.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace erms::shard {

ShardedSimulation::ShardedSimulation(const MicroserviceCatalog &catalog,
                                     ShardedSimConfig config)
    : catalog_(catalog), config_(std::move(config))
{
    ERMS_ASSERT_MSG(config_.shards >= 1, "shard count must be >= 1");
}

ShardedSimulation::~ShardedSimulation() = default;

void
ShardedSimulation::addService(ServiceWorkload service)
{
    ERMS_ASSERT_MSG(!finalized_,
                    "addService must precede routing calls: the shard "
                    "partition is computed from the full service list");
    pendingServices_.push_back(std::move(service));
}

void
ShardedSimulation::setBackgroundLoadAll(double cpu_util, double mem_util)
{
    ERMS_ASSERT_MSG(!finalized_,
                    "setBackgroundLoadAll must precede routing calls");
    hasBackground_ = true;
    bgCpu_ = cpu_util;
    bgMem_ = mem_util;
}

void
ShardedSimulation::ensureFinalized()
{
    if (finalized_)
        return;
    finalized_ = true;

    plan_ = planShards(pendingServices_, config_.base.hostCount,
                       config_.shards, config_.base.seed);

    sims_.reserve(plan_.shards.size());
    if (config_.telemetry) {
        mergedView_ = std::make_shared<ShardedTelemetryView>();
        monitors_.reserve(plan_.shards.size());
    }
    for (const ShardSpec &spec : plan_.shards) {
        SimConfig cfg = config_.base;
        cfg.hostCount = spec.hostCount;
        cfg.seed = spec.seed;
        auto sim = std::make_unique<Simulation>(catalog_, cfg);
        if (config_.telemetry) {
            monitors_.push_back(
                std::make_unique<telemetry::SimMonitor>(config_.monitor));
            sim->setMonitor(monitors_.back().get());
        }
        if (hasBackground_)
            sim->setBackgroundLoadAll(bgCpu_, bgMem_);
        for (std::size_t svc : spec.services)
            sim->addService(pendingServices_[svc]);
        sims_.push_back(std::move(sim));
    }
}

void
ShardedSimulation::applyPlan(const GlobalPlan &plan)
{
    ensureFinalized();
    appliedPlan_ = plan;
    hasPlan_ = true;
    for (int k = 0; k < plan_.shardCount; ++k)
        sims_[k]->applyPlan(shardLocalPlan(k));
}

GlobalPlan
ShardedSimulation::shardLocalPlan(int k)
{
    ensureFinalized();
    ERMS_ASSERT(k >= 0 && k < plan_.shardCount);
    if (!hasPlan_)
        return GlobalPlan{};
    GlobalPlan local;
    local.policy = appliedPlan_.policy;
    local.feasible = appliedPlan_.feasible;
    local.infeasibleReason = appliedPlan_.infeasibleReason;
    for (const auto &[ms, count] : appliedPlan_.containers) {
        auto owner = plan_.shardOfMicroservice.find(ms);
        if (owner != plan_.shardOfMicroservice.end() && owner->second == k)
            local.containers.emplace(ms, count);
    }
    for (const ServiceAllocation &alloc : appliedPlan_.services) {
        auto owner = plan_.shardOfService.find(alloc.service);
        if (owner != plan_.shardOfService.end() && owner->second == k)
            local.services.push_back(alloc);
    }
    for (const auto &[ms, order] : appliedPlan_.priorityOrder) {
        auto owner = plan_.shardOfMicroservice.find(ms);
        if (owner != plan_.shardOfMicroservice.end() && owner->second == k)
            local.priorityOrder.emplace(ms, order);
    }
    for (const auto &[ms, count] : local.containers)
        local.totalContainers += count;
    // totalResource stays a cluster-wide figure; the per-shard slice
    // recomputes only what routing consumers (capacity repair, scaling
    // paths keyed on the containers map) actually read.
    local.totalResource = appliedPlan_.totalResource;
    return local;
}

void
ShardedSimulation::setFaultConfig(const FaultConfig &config)
{
    ensureFinalized();
    const int total_hosts = config_.base.hostCount;
    for (int k = 0; k < plan_.shardCount; ++k) {
        FaultConfig shard_config = config;
        if (plan_.shardCount > 1) {
            // Independent schedule stream per shard; cluster-wide
            // Poisson rates thin by the shard's host share (splitting a
            // Poisson process by fraction p yields a Poisson process of
            // rate p * lambda).
            shard_config.seed =
                deriveRunSeed(config.seed, static_cast<std::uint64_t>(k));
            const double share =
                static_cast<double>(plan_.shards[k].hostCount) /
                static_cast<double>(total_hosts);
            shard_config.crashesPerMinute = config.crashesPerMinute * share;
            shard_config.slowdownsPerMinute =
                config.slowdownsPerMinute * share;
        }
        sims_[k]->setFaultConfig(shard_config);
    }
}

void
ShardedSimulation::setResilienceConfig(const ResilienceConfig &config)
{
    ensureFinalized();
    for (auto &sim : sims_)
        sim->setResilienceConfig(config);
}

void
ShardedSimulation::setContainerCount(MicroserviceId ms, int count)
{
    ensureFinalized();
    auto owner = plan_.shardOfMicroservice.find(ms);
    ERMS_ASSERT_MSG(owner != plan_.shardOfMicroservice.end(),
                    "setContainerCount on a microservice no shard owns");
    sims_[owner->second]->setContainerCount(ms, count);
}

int
ShardedSimulation::containerCount(MicroserviceId ms)
{
    ensureFinalized();
    auto owner = plan_.shardOfMicroservice.find(ms);
    if (owner == plan_.shardOfMicroservice.end())
        return 0;
    return sims_[owner->second]->containerCount(ms);
}

void
ShardedSimulation::setShardMinuteController(
    int k, std::function<void(Simulation &, int)> controller)
{
    ensureFinalized();
    ERMS_ASSERT(k >= 0 && k < plan_.shardCount);
    sims_[k]->setMinuteCallback(std::move(controller));
}

const ShardPlan &
ShardedSimulation::shardPlan()
{
    ensureFinalized();
    return plan_;
}

int
ShardedSimulation::shardCount()
{
    ensureFinalized();
    return plan_.shardCount;
}

Simulation &
ShardedSimulation::shard(int k)
{
    ensureFinalized();
    ERMS_ASSERT(k >= 0 && k < plan_.shardCount);
    return *sims_[k];
}

std::shared_ptr<const telemetry::TelemetryView>
ShardedSimulation::mergedView()
{
    ensureFinalized();
    return mergedView_;
}

void
ShardedSimulation::mergeNewTelemetry()
{
    if (!config_.telemetry)
        return;
    // Only merge scrape generations every shard has completed: all
    // monitors scrape on the same deterministic cadence, so generation
    // g of each shard samples the same simulated instant.
    std::size_t complete = monitors_[0]->snapshots().size();
    for (const auto &monitor : monitors_)
        complete = std::min(complete, monitor->snapshots().size());
    while (mergedGenerations_ < complete) {
        std::vector<telemetry::TelemetrySnapshot> generation;
        generation.reserve(monitors_.size());
        for (const auto &monitor : monitors_)
            generation.push_back(
                monitor->snapshots()[mergedGenerations_]);
        mergedView_->append(mergeTelemetrySnapshots(generation, plan_));
        ++mergedGenerations_;
    }
}

void
ShardedSimulation::run()
{
    ensureFinalized();
    ERMS_ASSERT_MSG(!ran_, "ShardedSimulation::run may only be called once");
    ran_ = true;

    // Serial setup: beginRun seeds arrivals and the first boundary and
    // publishes the initial snapshot/scrape per shard.
    for (auto &sim : sims_) {
        sim->setCoordinatedPause(true);
        sim->beginRun();
    }
    mergeNewTelemetry(); // the t=0 baseline scrapes

    ParallelRunner runner(config_.runner);
    const std::size_t shard_count = sims_.size();
    std::vector<int> paused(shard_count, 0);
    bool anyRunning = true;
    while (anyRunning) {
        std::vector<std::function<void()>> tasks;
        tasks.reserve(shard_count);
        for (std::size_t k = 0; k < shard_count; ++k) {
            if (paused[k] < 0)
                continue; // shard already drained to the horizon
            Simulation *sim = sims_[k].get();
            int *state = &paused[k];
            tasks.push_back(
                [sim, state] { *state = sim->advanceToMinuteBoundary(); });
        }
        runner.runAll(std::move(tasks));
        // Between rounds no shard executes: safe to grow the merged
        // telemetry stream the shard callbacks read during rounds.
        mergeNewTelemetry();
        anyRunning = false;
        for (std::size_t k = 0; k < shard_count; ++k)
            anyRunning = anyRunning || paused[k] >= 0;
    }

    std::vector<const SimMetrics *> parts;
    parts.reserve(shard_count);
    for (const auto &sim : sims_)
        parts.push_back(&sim->metrics());
    mergedMetrics_ = mergeMetrics(parts);
    metricsMerged_ = true;
}

const SimMetrics &
ShardedSimulation::metrics() const
{
    ERMS_ASSERT_MSG(metricsMerged_, "metrics() requires a completed run()");
    return mergedMetrics_;
}

ClusterSnapshot
ShardedSimulation::clusterSnapshot() const
{
    ERMS_ASSERT_MSG(finalized_, "clusterSnapshot() requires finalization");
    std::vector<ClusterSnapshot> parts;
    parts.reserve(sims_.size());
    for (const auto &sim : sims_)
        parts.push_back(sim->clusterSnapshot());
    return mergeClusterSnapshots(parts, plan_);
}

std::uint64_t
ShardedSimulation::eventsDispatched() const
{
    std::uint64_t total = 0;
    for (const auto &sim : sims_)
        total += sim->metrics().eventsDispatched;
    return total;
}

} // namespace erms::shard
