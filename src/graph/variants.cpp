#include "variants.hpp"

#include <unordered_map>
#include <unordered_set>

#include "common/error.hpp"

namespace erms {

DependencyGraph
mergeGraphVariants(const std::vector<const DependencyGraph *> &variants,
                   VariantMergePolicy policy)
{
    if (variants.empty())
        throw GraphError("mergeGraphVariants: no variants given");
    const DependencyGraph &first = *variants.front();
    for (const DependencyGraph *variant : variants) {
        ERMS_ASSERT(variant != nullptr);
        if (variant->service() != first.service())
            throw GraphError("variants belong to different services");
        if (variant->root() != first.root())
            throw GraphError("variants disagree on the root microservice");
    }

    // Collect, per child microservice: the placement (parent, stage)
    // from its first appearance, the sum of multiplicities, and the
    // number of variants containing it.
    struct ChildInfo
    {
        MicroserviceId parent = kInvalidMicroservice;
        int stage = 0;
        double multiplicitySum = 0.0;
        int appearances = 0;
        std::size_t firstVariant = 0; ///< insertion-order tie-break
        std::size_t order = 0;        ///< position within that variant
    };
    std::unordered_map<MicroserviceId, ChildInfo> children;

    for (std::size_t v = 0; v < variants.size(); ++v) {
        const DependencyGraph &variant = *variants[v];
        const auto &nodes = variant.nodes();
        for (std::size_t position = 0; position < nodes.size();
             ++position) {
            const MicroserviceId id = nodes[position];
            if (id == variant.root())
                continue;
            const MicroserviceId parent = variant.parent(id);
            double multiplicity = 1.0;
            int stage = 0;
            for (const DependencyGraph::Call &call :
                 variant.calls(parent)) {
                if (call.callee == id) {
                    multiplicity = call.multiplicity;
                    stage = call.stage;
                    break;
                }
            }
            auto it = children.find(id);
            if (it == children.end()) {
                ChildInfo info;
                info.parent = parent;
                info.stage = stage;
                info.multiplicitySum = multiplicity;
                info.appearances = 1;
                info.firstVariant = v;
                info.order = position;
                children.emplace(id, info);
            } else {
                it->second.multiplicitySum += multiplicity;
                ++it->second.appearances;
            }
        }
    }

    // Rebuild in (first variant, position) order so parents precede
    // children.
    std::vector<std::pair<std::pair<std::size_t, std::size_t>,
                          MicroserviceId>>
        ordered;
    ordered.reserve(children.size());
    for (const auto &[id, info] : children)
        ordered.push_back({{info.firstVariant, info.order}, id});
    std::sort(ordered.begin(), ordered.end());

    DependencyGraph merged(first.service(), first.root());
    const double variant_count = static_cast<double>(variants.size());
    for (const auto &[key, id] : ordered) {
        const ChildInfo &info = children.at(id);
        // A child whose recorded parent never made it into the merged
        // graph (conflicting placements) attaches under the root.
        const MicroserviceId parent =
            merged.contains(info.parent) ? info.parent : merged.root();
        double multiplicity =
            info.multiplicitySum / static_cast<double>(info.appearances);
        if (policy == VariantMergePolicy::FrequencyWeighted) {
            multiplicity *=
                static_cast<double>(info.appearances) / variant_count;
        }
        merged.addCall(parent, id, info.stage, multiplicity);
    }
    merged.validate();
    return merged;
}

double
graphDistance(const DependencyGraph &a, const DependencyGraph &b)
{
    std::unordered_set<MicroserviceId> set_a(a.nodes().begin(),
                                             a.nodes().end());
    std::size_t intersection = 0;
    for (MicroserviceId id : b.nodes())
        intersection += set_a.count(id);
    const std::size_t union_size =
        a.nodes().size() + b.nodes().size() - intersection;
    if (union_size == 0)
        return 0.0;
    return 1.0 - static_cast<double>(intersection) /
                     static_cast<double>(union_size);
}

std::vector<std::vector<std::size_t>>
clusterGraphVariants(const std::vector<const DependencyGraph *> &variants,
                     double max_distance)
{
    ERMS_ASSERT(max_distance >= 0.0 && max_distance <= 1.0);
    std::vector<std::vector<std::size_t>> clusters;
    std::vector<bool> assigned(variants.size(), false);

    for (std::size_t medoid = 0; medoid < variants.size(); ++medoid) {
        if (assigned[medoid])
            continue;
        std::vector<std::size_t> cluster{medoid};
        assigned[medoid] = true;
        for (std::size_t other = medoid + 1; other < variants.size();
             ++other) {
            if (assigned[other])
                continue;
            if (graphDistance(*variants[medoid], *variants[other]) <=
                max_distance) {
                cluster.push_back(other);
                assigned[other] = true;
            }
        }
        clusters.push_back(std::move(cluster));
    }
    return clusters;
}

} // namespace erms
