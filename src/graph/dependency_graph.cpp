#include "dependency_graph.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace erms {

DependencyGraph::DependencyGraph(ServiceId service, MicroserviceId root)
    : service_(service), root_(root)
{
    if (root == kInvalidMicroservice)
        throw GraphError("dependency graph requires a valid root");
    nodes_.push_back(root);
    info_.emplace(root, NodeInfo{});
}

void
DependencyGraph::addCall(MicroserviceId parent, MicroserviceId child,
                         int stage, double multiplicity)
{
    auto parent_it = info_.find(parent);
    if (parent_it == info_.end()) {
        throw GraphError("addCall: parent " + std::to_string(parent) +
                         " not in graph");
    }
    if (info_.count(child)) {
        throw GraphError("addCall: microservice " + std::to_string(child) +
                         " already appears in this graph (tree property)");
    }
    if (multiplicity <= 0.0)
        throw GraphError("addCall: multiplicity must be positive");

    auto &calls = parent_it->second.calls;
    calls.push_back(Call{child, stage, multiplicity});
    std::stable_sort(calls.begin(), calls.end(),
                     [](const Call &a, const Call &b) {
                         return a.stage < b.stage;
                     });

    nodes_.push_back(child);
    NodeInfo child_info;
    child_info.parent = parent;
    info_.emplace(child, std::move(child_info));
}

bool
DependencyGraph::contains(MicroserviceId id) const
{
    return info_.count(id) > 0;
}

const DependencyGraph::NodeInfo &
DependencyGraph::info(MicroserviceId id) const
{
    auto it = info_.find(id);
    if (it == info_.end()) {
        throw GraphError("microservice " + std::to_string(id) +
                         " not in graph");
    }
    return it->second;
}

const std::vector<DependencyGraph::Call> &
DependencyGraph::calls(MicroserviceId parent) const
{
    return info(parent).calls;
}

std::vector<std::vector<DependencyGraph::Call>>
DependencyGraph::stages(MicroserviceId parent) const
{
    std::vector<std::vector<Call>> grouped;
    for (const Call &call : info(parent).calls) {
        if (grouped.empty() || grouped.back().front().stage != call.stage)
            grouped.emplace_back();
        grouped.back().push_back(call);
    }
    return grouped;
}

MicroserviceId
DependencyGraph::parent(MicroserviceId id) const
{
    return info(id).parent;
}

bool
DependencyGraph::isLeaf(MicroserviceId id) const
{
    return info(id).calls.empty();
}

std::unordered_map<MicroserviceId, double>
DependencyGraph::workloads(double root_rate) const
{
    ERMS_ASSERT(root_rate >= 0.0);
    std::unordered_map<MicroserviceId, double> result;
    result.reserve(nodes_.size());

    // nodes_ is in insertion order with parents always before children,
    // so one forward pass propagates multiplicities.
    result[root_] = root_rate;
    for (MicroserviceId id : nodes_) {
        const double parent_rate = result.at(id);
        for (const Call &call : info(id).calls)
            result[call.callee] = parent_rate * call.multiplicity;
    }
    return result;
}

std::vector<std::vector<MicroserviceId>>
DependencyGraph::rootToLeafPaths() const
{
    std::vector<std::vector<MicroserviceId>> paths;
    std::vector<MicroserviceId> current;

    const std::function<void(MicroserviceId)> walk =
        [&](MicroserviceId id) {
            current.push_back(id);
            const auto &node_calls = info(id).calls;
            if (node_calls.empty()) {
                paths.push_back(current);
            } else {
                for (const Call &call : node_calls)
                    walk(call.callee);
            }
            current.pop_back();
        };
    walk(root_);
    return paths;
}

std::vector<std::vector<MicroserviceId>>
DependencyGraph::criticalPaths(std::size_t max_paths) const
{
    // Partial critical paths under construction, extended node by node.
    std::vector<std::vector<MicroserviceId>> paths;
    bool truncated = false;

    // Returns the set of path *suffixes* through the subtree rooted at
    // id: each suffix starts with id and picks one branch per stage.
    const std::function<std::vector<std::vector<MicroserviceId>>(
        MicroserviceId)>
        suffixes = [&](MicroserviceId id)
        -> std::vector<std::vector<MicroserviceId>> {
        std::vector<std::vector<MicroserviceId>> result{{id}};
        for (const auto &stage : stages(id)) {
            // One branch choice per stage: cross product.
            std::vector<std::vector<MicroserviceId>> extended;
            for (const auto &prefix : result) {
                for (const Call &call : stage) {
                    for (const auto &branch : suffixes(call.callee)) {
                        if (extended.size() >= max_paths) {
                            truncated = true;
                            break;
                        }
                        std::vector<MicroserviceId> path = prefix;
                        path.insert(path.end(), branch.begin(),
                                    branch.end());
                        extended.push_back(std::move(path));
                    }
                }
            }
            result = std::move(extended);
        }
        return result;
    };

    paths = suffixes(root_);
    (void)truncated;
    if (paths.size() > max_paths)
        paths.resize(max_paths);
    return paths;
}

double
endToEndLatency(const DependencyGraph &graph,
                const std::unordered_map<MicroserviceId, double> &values,
                std::vector<MicroserviceId> *critical)
{
    struct SubtreeResult
    {
        double latency = 0.0;
        std::vector<MicroserviceId> path;
    };
    const std::function<SubtreeResult(MicroserviceId)> walk =
        [&](MicroserviceId id) -> SubtreeResult {
        SubtreeResult result;
        result.latency = values.at(id);
        result.path.push_back(id);
        for (const auto &stage : graph.stages(id)) {
            SubtreeResult worst;
            worst.latency = -1.0;
            for (const DependencyGraph::Call &call : stage) {
                SubtreeResult branch = walk(call.callee);
                if (branch.latency > worst.latency)
                    worst = std::move(branch);
            }
            result.latency += worst.latency;
            result.path.insert(result.path.end(), worst.path.begin(),
                               worst.path.end());
        }
        return result;
    };
    SubtreeResult total = walk(graph.root());
    if (critical)
        *critical = std::move(total.path);
    return total.latency;
}

int
DependencyGraph::depth() const
{
    int max_depth = 0;
    const std::function<int(MicroserviceId)> walk = [&](MicroserviceId id) {
        int deepest = 0;
        for (const Call &call : info(id).calls)
            deepest = std::max(deepest, walk(call.callee));
        return deepest + 1;
    };
    max_depth = walk(root_);
    return max_depth;
}

void
DependencyGraph::validate() const
{
    // Reachability: every node must be reachable from the root.
    std::size_t visited = 0;
    const std::function<void(MicroserviceId)> walk = [&](MicroserviceId id) {
        ++visited;
        for (const Call &call : info(id).calls) {
            if (info(call.callee).parent != id)
                throw GraphError("parent/child bookkeeping mismatch");
            walk(call.callee);
        }
    };
    walk(root_);
    if (visited != nodes_.size())
        throw GraphError("graph contains unreachable nodes");
    if (info(root_).parent != kInvalidMicroservice)
        throw GraphError("root must not have a parent");
}

std::string
DependencyGraph::toDot(
    const std::function<std::string(MicroserviceId)> &name_of) const
{
    std::ostringstream os;
    os << "digraph service_" << service_ << " {\n";
    for (MicroserviceId id : nodes_)
        os << "  n" << id << " [label=\"" << name_of(id) << "\"];\n";
    for (MicroserviceId id : nodes_) {
        for (const Call &call : info(id).calls) {
            os << "  n" << id << " -> n" << call.callee << " [label=\"s"
               << call.stage << "\"];\n";
        }
    }
    os << "}\n";
    return os.str();
}

} // namespace erms
