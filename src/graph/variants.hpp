/**
 * @file
 * Dynamic dependency graph handling (§7) and the variant-clustering
 * extension the paper leaves as future work (§9).
 *
 * Production call graphs are not static: the set of microservices a
 * request touches depends on its input (cache hits, feature flags, A/B
 * paths). Erms handles this by comparing the variants observed for one
 * service and merging them into a *complete* graph that is then scaled
 * (§7) — which over-provisions, because a request usually exercises only
 * a small subset of the complete graph. Two refinements implemented
 * here:
 *
 *  - frequency-weighted merging: a call's multiplicity in the complete
 *    graph is scaled by the fraction of variants containing it, so the
 *    per-microservice workload equals its *expected* calls per request;
 *  - variant clustering (§9): group variants into classes of similar
 *    structure and scale each class separately.
 */

#ifndef ERMS_GRAPH_VARIANTS_HPP
#define ERMS_GRAPH_VARIANTS_HPP

#include <vector>

#include "graph/dependency_graph.hpp"

namespace erms {

/** Merging behaviour for dynamic graph variants. */
enum class VariantMergePolicy
{
    /** §7 default: the complete graph keeps each call's average
     *  multiplicity — conservative, over-provisions rarely-taken
     *  branches. */
    Complete,
    /** Refinement: scale each call's multiplicity by its appearance
     *  frequency across variants, making per-microservice workloads
     *  equal to expected calls per request. */
    FrequencyWeighted,
};

/**
 * Merge observed variants of one service's dependency graph into a
 * complete graph.
 *
 * All variants must share the service id and root. A microservice keeps
 * the parent and stage from the first variant where it appears;
 * conflicting placements in later variants are ignored (the paper's
 * static-structure assumption per parent).
 *
 * @throws GraphError when variants is empty or roots/services disagree.
 */
DependencyGraph
mergeGraphVariants(const std::vector<const DependencyGraph *> &variants,
                   VariantMergePolicy policy = VariantMergePolicy::Complete);

/**
 * Structural distance between two variants: Jaccard distance of their
 * microservice sets (0 = identical node sets, 1 = disjoint).
 */
double graphDistance(const DependencyGraph &a, const DependencyGraph &b);

/**
 * Greedy medoid clustering of variants (§9): repeatedly pick the first
 * unassigned variant as a medoid and absorb every unassigned variant
 * within max_distance of it. Returns clusters as index lists into the
 * input vector; every variant belongs to exactly one cluster.
 */
std::vector<std::vector<std::size_t>>
clusterGraphVariants(const std::vector<const DependencyGraph *> &variants,
                     double max_distance);

} // namespace erms

#endif // ERMS_GRAPH_VARIANTS_HPP
