/**
 * @file
 * Microservice dependency graphs (§2.1). A graph describes how one online
 * service fans out over microservices: each node's outgoing calls are
 * grouped into sequential *stages*; calls within the same stage execute in
 * parallel, and stages execute one after another (Fig. 1: T calls Url and
 * U in parallel — one stage — then calls C — a later stage).
 *
 * Production graphs behave like trees (§5.3.3), and Algorithm 1 relies on
 * that, so DependencyGraph enforces a tree over microservice ids: every
 * microservice appears at most once per graph and has exactly one parent.
 * The same microservice may of course appear in many different services'
 * graphs — that is exactly the sharing Erms exploits.
 */

#ifndef ERMS_GRAPH_DEPENDENCY_GRAPH_HPP
#define ERMS_GRAPH_DEPENDENCY_GRAPH_HPP

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace erms {

/**
 * Tree-shaped call graph of one online service.
 */
class DependencyGraph
{
  public:
    /** One call edge from a parent microservice. */
    struct Call
    {
        MicroserviceId callee = kInvalidMicroservice;
        /** Sequential stage index; equal stages run in parallel. */
        int stage = 0;
        /** Average number of calls issued per parent invocation. */
        double multiplicity = 1.0;
    };

    DependencyGraph(ServiceId service, MicroserviceId root);

    /**
     * Add a call edge. The parent must already be in the graph; the child
     * must not be (tree property).
     * @throws GraphError on violations.
     */
    void addCall(MicroserviceId parent, MicroserviceId child, int stage,
                 double multiplicity = 1.0);

    ServiceId service() const { return service_; }
    MicroserviceId root() const { return root_; }

    bool contains(MicroserviceId id) const;
    std::size_t size() const { return nodes_.size(); }

    /** All microservices, root first, in insertion order. */
    const std::vector<MicroserviceId> &nodes() const { return nodes_; }

    /** Outgoing calls of a node, ordered by stage. */
    const std::vector<Call> &calls(MicroserviceId parent) const;

    /** Outgoing calls grouped into stages (ascending stage index). */
    std::vector<std::vector<Call>> stages(MicroserviceId parent) const;

    /** Parent of a node; kInvalidMicroservice for the root. */
    MicroserviceId parent(MicroserviceId id) const;

    /** True if the node issues no downstream calls. */
    bool isLeaf(MicroserviceId id) const;

    /**
     * Per-microservice workload gamma_i given the service's request rate:
     * gamma_i = rate * product of multiplicities on the root path.
     */
    std::unordered_map<MicroserviceId, double>
    workloads(double root_rate) const;

    /** All root-to-leaf microservice chains (tree paths; note these are
     *  NOT the paper's critical paths — see criticalPaths()). */
    std::vector<std::vector<MicroserviceId>> rootToLeafPaths() const;

    /**
     * Critical paths in the paper's sense (§2.1): a critical path visits
     * *every sequential stage* of each node it passes through, picking
     * one branch per parallel stage (Fig. 1: CP1 = {T, U, C} contains
     * both the stage-0 branch U and the stage-1 call C). End-to-end
     * latency is the max over critical paths of the sum of member
     * latencies. The number of such paths can grow combinatorially, so
     * enumeration stops after max_paths (remaining ones are dropped).
     */
    std::vector<std::vector<MicroserviceId>>
    criticalPaths(std::size_t max_paths = 4096) const;

    /** Longest root-to-leaf chain length in nodes. */
    int depth() const;

    /** Structural checks beyond construction-time enforcement. */
    void validate() const;

    /** Graphviz DOT rendering; name_of maps ids to labels. */
    std::string
    toDot(const std::function<std::string(MicroserviceId)> &name_of) const;

  private:
    struct NodeInfo
    {
        MicroserviceId parent = kInvalidMicroservice;
        std::vector<Call> calls;
    };

    const NodeInfo &info(MicroserviceId id) const;

    ServiceId service_;
    MicroserviceId root_;
    std::vector<MicroserviceId> nodes_;
    std::unordered_map<MicroserviceId, NodeInfo> info_;
};

/**
 * End-to-end latency composition over a graph: recursively, a node
 * contributes its own value plus, for each sequential stage, the maximum
 * over that stage's parallel branches. This is the latency semantics of
 * Fig. 1 and the quantity constrained by Eq. (2).
 *
 * @param values     per-microservice latency (every node must be present)
 * @param critical   optional out-parameter receiving one argmax critical
 *                   path (root plus, per stage, the members of the
 *                   worst branch)
 */
double
endToEndLatency(const DependencyGraph &graph,
                const std::unordered_map<MicroserviceId, double> &values,
                std::vector<MicroserviceId> *critical = nullptr);

} // namespace erms

#endif // ERMS_GRAPH_DEPENDENCY_GRAPH_HPP
