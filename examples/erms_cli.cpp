/**
 * @file
 * Command-line front end mirroring the paper artifact's script-per-module
 * workflow (Appendix B): profile an application, save/load the fitted
 * models, compute a plan, persist it, and validate it in the simulator.
 *
 * Usage:
 *   erms_cli profile  <app> <models-file>
 *   erms_cli plan     <app> <models-file> <sla-ms> <req-per-min>
 *                     [priority|fcfs|non-sharing] [plan-file]
 *   erms_cli validate <app> <models-file> <plan-file> <sla-ms>
 *                     <req-per-min>
 *   erms_cli demo     <app>
 *
 * <app> is one of: hotel, social, media.
 */

#include <fstream>
#include <iostream>
#include <string>

#include "apps/applications.hpp"
#include "common/table.hpp"
#include "core/erms.hpp"
#include "core/profiling_pipeline.hpp"
#include "io/serialization.hpp"

using namespace erms;

namespace {

Application
makeApp(const std::string &name, MicroserviceCatalog &catalog)
{
    if (name == "hotel")
        return makeHotelReservation(catalog, 0);
    if (name == "social")
        return makeSocialNetwork(catalog, 0);
    if (name == "media")
        return makeMediaService(catalog, 0);
    throw ErmsError("unknown application '" + name +
                    "' (expected hotel|social|media)");
}

std::vector<ServiceSpec>
makeServices(const Application &app, double sla, double workload)
{
    std::vector<ServiceSpec> services;
    for (std::size_t i = 0; i < app.graphs.size(); ++i) {
        ServiceSpec svc;
        svc.id = app.graphs[i].service();
        svc.name = app.serviceNames[i];
        svc.graph = &app.graphs[i];
        svc.slaMs = sla;
        svc.workload = workload;
        services.push_back(svc);
    }
    return services;
}

int
cmdProfile(const std::string &app_name, const std::string &path)
{
    MicroserviceCatalog catalog;
    const Application app = makeApp(app_name, catalog);
    std::cout << "profiling " << app.name << " ("
              << app.uniqueMicroservices() << " microservices)...\n";

    std::vector<const DependencyGraph *> graphs;
    for (const auto &graph : app.graphs)
        graphs.push_back(&graph);
    ProfilingSweepConfig sweep;
    sweep.ratePerService = 12000.0;
    sweep.minutesPerCell = 2;
    const auto samples = collectProfilingSamples(catalog, graphs, sweep);

    std::unordered_map<MicroserviceId, StoredModel> stored;
    double accuracy_sum = 0.0;
    for (const auto &[id, ms_samples] : samples) {
        if (ms_samples.size() < 8)
            continue;
        const PiecewiseFitResult fit = fitPiecewiseModel(ms_samples);
        stored.emplace(id, storedFromFit(fit));
        accuracy_sum += fit.trainAccuracy;
    }
    std::ofstream out(path);
    if (!out)
        throw ErmsError("cannot write " + path);
    writeModels(out, stored);
    std::cout << "wrote " << stored.size() << " models to " << path
              << " (mean training accuracy "
              << accuracy_sum / static_cast<double>(stored.size())
              << ")\n";
    return 0;
}

SharingPolicy
parsePolicy(const std::string &text)
{
    if (text == "priority")
        return SharingPolicy::Priority;
    if (text == "fcfs")
        return SharingPolicy::FcfsSharing;
    if (text == "non-sharing")
        return SharingPolicy::NonSharing;
    throw ErmsError("unknown policy '" + text + "'");
}

int
cmdPlan(const std::string &app_name, const std::string &models_path,
        double sla, double workload, const std::string &policy_text,
        const std::string &plan_path)
{
    MicroserviceCatalog catalog;
    const Application app = makeApp(app_name, catalog);
    {
        std::ifstream in(models_path);
        if (!in)
            throw ErmsError("cannot read " + models_path);
        attachModels(catalog, readModels(in));
    }

    ErmsConfig config;
    config.policy = parsePolicy(policy_text);
    ErmsController controller(catalog, config);
    const auto services = makeServices(app, sla, workload);
    const GlobalPlan plan = controller.plan(services, {0.3, 0.25});

    printBanner(std::cout, "plan (" + policy_text + ")");
    TextTable table({"microservice", "containers"});
    for (const auto &[id, count] : plan.containers)
        table.row().cell(catalog.name(id)).cell(count);
    table.print(std::cout);
    std::cout << "total containers: " << plan.totalContainers
              << (plan.feasible ? "" : "  (SLA infeasible: " +
                                           plan.infeasibleReason + ")")
              << "\n";

    if (!plan_path.empty()) {
        std::ofstream out(plan_path);
        if (!out)
            throw ErmsError("cannot write " + plan_path);
        writePlan(out, plan);
        std::cout << "plan written to " << plan_path << "\n";
    }
    return plan.feasible ? 0 : 2;
}

int
cmdValidate(const std::string &app_name, const std::string &models_path,
            const std::string &plan_path, double sla, double workload)
{
    MicroserviceCatalog catalog;
    const Application app = makeApp(app_name, catalog);
    {
        std::ifstream in(models_path);
        if (!in)
            throw ErmsError("cannot read " + models_path);
        attachModels(catalog, readModels(in));
    }
    GlobalPlan plan;
    {
        std::ifstream in(plan_path);
        if (!in)
            throw ErmsError("cannot read " + plan_path);
        plan = readPlan(in);
    }

    SimConfig sim_config;
    sim_config.horizonMinutes = 5;
    sim_config.warmupMinutes = 1;
    Simulation sim(catalog, sim_config);
    sim.setBackgroundLoadAll(0.3, 0.25);
    const auto services = makeServices(app, sla, workload);
    for (const ServiceSpec &svc : services) {
        ServiceWorkload load;
        load.id = svc.id;
        load.graph = svc.graph;
        load.slaMs = svc.slaMs;
        load.rate = svc.workload;
        sim.addService(load);
    }
    sim.applyPlan(plan);
    sim.run();

    printBanner(std::cout, "validation");
    TextTable table({"service", "P95 (ms)", "violation %"});
    bool ok = true;
    for (const ServiceSpec &svc : services) {
        const double p95 = sim.metrics().p95(svc.id);
        ok = ok && p95 <= sla;
        table.row()
            .cell(svc.name)
            .cell(p95, 1)
            .cell(100.0 * sim.metrics().violationRate(svc.id, sla), 2);
    }
    table.print(std::cout);
    return ok ? 0 : 2;
}

int
usage()
{
    std::cerr
        << "usage:\n"
           "  erms_cli profile  <app> <models-file>\n"
           "  erms_cli plan     <app> <models-file> <sla-ms> "
           "<req-per-min> [policy] [plan-file]\n"
           "  erms_cli validate <app> <models-file> <plan-file> <sla-ms> "
           "<req-per-min>\n"
           "  erms_cli demo     <app>\n"
           "apps: hotel | social | media; policies: priority | fcfs | "
           "non-sharing\n";
    return 64;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const std::string command = argc > 1 ? argv[1] : "";
        if (command == "profile" && argc == 4)
            return cmdProfile(argv[2], argv[3]);
        if (command == "plan" && (argc == 6 || argc == 7 || argc == 8)) {
            return cmdPlan(argv[2], argv[3], std::stod(argv[4]),
                           std::stod(argv[5]),
                           argc > 6 ? argv[6] : "priority",
                           argc > 7 ? argv[7] : "");
        }
        if (command == "validate" && argc == 7) {
            return cmdValidate(argv[2], argv[3], argv[4],
                               std::stod(argv[5]), std::stod(argv[6]));
        }
        if (command == "demo" && argc == 3) {
            // profile -> plan -> validate in one go, via temp files.
            const std::string models = "/tmp/erms_demo_models.txt";
            const std::string plan = "/tmp/erms_demo_plan.txt";
            if (int rc = cmdProfile(argv[2], models))
                return rc;
            if (int rc = cmdPlan(argv[2], models, 200.0, 12000.0,
                                 "priority", plan))
                return rc;
            return cmdValidate(argv[2], models, plan, 200.0, 12000.0);
        }
        return usage();
    } catch (const std::exception &err) {
        std::cerr << "error: " << err.what() << "\n";
        return 1;
    }
}
