/**
 * @file
 * The Tracing Coordinator pipeline end to end (§5.1 + §5.2): run the
 * Hotel Reservation application with Jaeger-style 10% span sampling,
 * reconstruct every service's dependency graph from the raw spans
 * (overlapping client spans become parallel stages), extract per-
 * microservice latencies via Eq. (1), fit piecewise models from the
 * extracted observations, and compare the recovered structure with the
 * ground truth.
 *
 * Run: ./trace_pipeline
 */

#include <iostream>

#include "apps/applications.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "profiling/piecewise_fit.hpp"
#include "sim/simulation.hpp"
#include "trace/coordinator.hpp"

using namespace erms;

int
main()
{
    printBanner(std::cout, "Tracing Coordinator pipeline on Hotel "
                           "Reservation");

    MicroserviceCatalog catalog;
    const Application app = makeHotelReservation(catalog, 0);

    // 1. Run the cluster with a 10% head-sampling collector attached
    //    (the Jaeger default the paper uses).
    InMemorySpanCollector collector(0.10, 99);
    SimConfig config;
    config.horizonMinutes = 6;
    config.warmupMinutes = 0;
    Simulation sim(catalog, config);
    sim.setSpanCollector(&collector);
    sim.setBackgroundLoadAll(0.25, 0.2);
    for (std::size_t i = 0; i < app.graphs.size(); ++i) {
        ServiceWorkload svc;
        svc.id = app.graphs[i].service();
        svc.graph = &app.graphs[i];
        svc.rate = 12000.0;
        sim.addService(svc);
        for (MicroserviceId id : app.graphs[i].nodes()) {
            if (sim.containerCount(id) < 4)
                sim.setContainerCount(id, 4);
        }
    }
    sim.run();
    std::cout << "requests: " << sim.metrics().requestsCompleted
              << ", sampled spans: " << collector.spans().size() << "\n";

    // 2. Reconstruct each service's dependency graph from spans and
    //    check it against the ground truth.
    printBanner(std::cout, "dependency graphs reconstructed from spans");
    TextTable recon({"service", "nodes (truth)", "nodes (rebuilt)",
                     "structure matches"});
    for (std::size_t i = 0; i < app.graphs.size(); ++i) {
        const DependencyGraph &truth = app.graphs[i];
        const DependencyGraph rebuilt = TracingCoordinator::extractGraph(
            truth.service(), collector.spans());
        bool matches = rebuilt.root() == truth.root() &&
                       rebuilt.size() == truth.size();
        for (MicroserviceId id : truth.nodes()) {
            matches = matches && rebuilt.contains(id) &&
                      (id == truth.root() ||
                       rebuilt.parent(id) == truth.parent(id));
        }
        recon.row()
            .cell(app.serviceNames[i])
            .cell(truth.size())
            .cell(rebuilt.size())
            .cell(matches ? "yes" : "NO");
    }
    recon.print(std::cout);

    // 3. Extract per-microservice latency via Eq. (1) and show the
    //    tail statistics per microservice.
    const auto observations =
        TracingCoordinator::extractLatencies(collector.spans());
    std::unordered_map<MicroserviceId, SampleSet> latencies;
    for (const LatencyObservation &obs : observations)
        latencies[obs.microservice].add(obs.latencyMs);

    printBanner(std::cout,
                "per-microservice latency extracted via Eq. (1)");
    TextTable lat({"microservice", "samples", "P50 (ms)", "P95 (ms)"});
    for (MicroserviceId id : catalog.ids()) {
        auto it = latencies.find(id);
        if (it == latencies.end())
            continue;
        lat.row()
            .cell(catalog.name(id))
            .cell(it->second.count())
            .cell(it->second.p50(), 2)
            .cell(it->second.p95(), 2);
    }
    lat.print(std::cout);

    // 4. Feed the extracted latencies into the offline profiler for one
    //    busy microservice (the trace-driven variant of §5.2; here all
    //    samples share one interference level, so the fit collapses to
    //    one line pair at that level).
    const MicroserviceId target = catalog.findByName("search");
    std::vector<ProfilingSample> samples;
    const Interference itf = sim.clusterInterference();
    for (const LatencyObservation &obs : observations) {
        if (obs.microservice != target)
            continue;
        ProfilingSample s;
        s.latencyMs = obs.latencyMs;
        // Per-container workload observed during the run.
        s.gamma = 12000.0 / sim.containerCount(target);
        s.cpuUtil = itf.cpuUtil;
        s.memUtil = itf.memUtil;
        samples.push_back(s);
    }
    if (samples.size() >= 10) {
        const auto fit = fitPiecewiseModel(samples);
        std::cout << "\npiecewise fit from traced samples of '"
                  << catalog.name(target)
                  << "': training accuracy = " << fit.trainAccuracy
                  << "\n";
    }
    return 0;
}
