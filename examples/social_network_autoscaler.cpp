/**
 * @file
 * Closed-loop autoscaling of the Social Network application (the paper's
 * §6.3.2 scenario): profile the application offline, then replay a
 * diurnal workload with bursts while the Erms controller re-plans every
 * minute from observed arrival rates. Prints the per-minute workload,
 * deployed containers and worst P95.
 *
 * Run: ./social_network_autoscaler [minutes=18]
 */

#include <cstdlib>
#include <iostream>

#include "apps/applications.hpp"
#include "common/table.hpp"
#include "core/erms.hpp"
#include "core/profiling_pipeline.hpp"
#include "workload/generators.hpp"

using namespace erms;

int
main(int argc, char **argv)
{
    const int minutes = argc > 1 ? std::atoi(argv[1]) : 18;

    printBanner(std::cout, "Erms closed-loop autoscaler on Social Network");

    // 1. Build the application and profile it offline (§5.2): the sweep
    //    runs the cluster simulator across workload fractions and
    //    interference levels and fits Eq. (15) per microservice.
    MicroserviceCatalog catalog;
    const Application app = makeSocialNetwork(catalog, 0);
    std::cout << "profiling " << app.uniqueMicroservices()
              << " microservices offline (this runs simulated sweeps)...\n";
    std::vector<const DependencyGraph *> graphs;
    for (const auto &graph : app.graphs)
        graphs.push_back(&graph);
    ProfilingSweepConfig sweep;
    sweep.ratePerService = 10000.0;
    sweep.minutesPerCell = 2;
    const auto accuracy = fitAndAttachModels(
        catalog, collectProfilingSamples(catalog, graphs, sweep));
    double mean_accuracy = 0.0;
    for (const auto &[id, acc] : accuracy)
        mean_accuracy += acc;
    std::cout << "fitted " << accuracy.size()
              << " piecewise models, mean training accuracy "
              << mean_accuracy / static_cast<double>(accuracy.size())
              << "\n";

    // 2. Dynamic workload: half a diurnal cycle with mild bursts.
    const auto series =
        alibabaLikeSeries(minutes, 3000.0, 12000.0,
                          2.0 * minutes, 0.05, 0.05, 1.25, 2, 21);

    // 3. Controller with dynamic-operation headroom.
    std::vector<ServiceSpec> services;
    for (std::size_t i = 0; i < app.graphs.size(); ++i) {
        ServiceSpec svc;
        svc.id = app.graphs[i].service();
        svc.name = app.serviceNames[i];
        svc.graph = &app.graphs[i];
        svc.slaMs = 310.0;
        svc.workload = series.front() * 1.3;
        services.push_back(svc);
    }
    ErmsConfig config;
    config.workloadHeadroom = 1.2;
    ErmsController controller(catalog, config);
    const Interference itf{0.25, 0.2};

    // 4. Replay.
    SimConfig sim_config;
    sim_config.horizonMinutes = minutes;
    sim_config.warmupMinutes = 1;
    Simulation sim(catalog, sim_config);
    sim.setBackgroundLoadAll(itf.cpuUtil, itf.memUtil);
    for (const ServiceSpec &svc : services) {
        ServiceWorkload workload;
        workload.id = svc.id;
        workload.graph = svc.graph;
        workload.slaMs = svc.slaMs;
        workload.rateSeries = series;
        sim.addService(workload);
    }
    sim.applyPlan(controller.plan(services, itf));

    TextTable timeline({"minute", "workload (req/min)", "containers",
                        "worst P95 (ms)", "within SLA"});
    auto autoscaler = controller.makeAutoscaler(services);
    sim.setMinuteCallback([&](Simulation &s, int minute) {
        autoscaler(s, minute);
        int total = 0;
        for (const auto &graph : app.graphs) {
            for (MicroserviceId id : graph.nodes())
                total += s.containerCount(id);
        }
        double worst = 0.0;
        for (const ServiceSpec &svc : services) {
            auto it = s.metrics().endToEndByMinute.find(svc.id);
            if (it == s.metrics().endToEndByMinute.end())
                continue;
            worst = std::max(
                worst, it->second
                           .window(static_cast<std::uint64_t>(minute))
                           .p95());
        }
        timeline.row()
            .cell(minute)
            .cell(series[static_cast<std::size_t>(minute)], 0)
            .cell(total)
            .cell(worst, 1)
            .cell(worst <= 310.0 ? "yes" : "NO");
    });
    sim.run();
    timeline.print(std::cout);

    std::cout << "\nrequests completed: "
              << sim.metrics().requestsCompleted << "\n";
    return 0;
}
