/**
 * @file
 * Quickstart: the minimal end-to-end Erms workflow on the two-service
 * shared-microservice scenario of Fig. 5.
 *
 *  1. Build an application catalog (two services sharing postStorage).
 *  2. Plan with Erms (priority scheduling), FCFS sharing and non-sharing.
 *  3. Validate the Erms plan in the cluster simulator: apply the
 *     container counts and priority order, replay the workload, and
 *     check the observed P95 against the SLA.
 */

#include <iostream>

#include "apps/applications.hpp"
#include "core/erms.hpp"
#include "common/table.hpp"

using namespace erms;

int
main()
{
    // 1. Application: service 1 = U -> P, service 2 = H -> P, P shared.
    MicroserviceCatalog catalog;
    const Application app = makeMotivationShared(catalog, 0);

    std::vector<ServiceSpec> services;
    for (std::size_t i = 0; i < app.graphs.size(); ++i) {
        ServiceSpec svc;
        svc.id = app.graphs[i].service();
        svc.name = app.serviceNames[i];
        svc.graph = &app.graphs[i];
        svc.slaMs = 110.0;
        svc.workload = 40000.0; // requests/minute, as in §2.3
        services.push_back(svc);
    }

    // 2. Plan under the three sharing policies.
    ErmsConfig config;
    ErmsController controller(catalog, config);
    const Interference itf{0.30, 0.30};

    TextTable table({"policy", "containers", "resource", "feasible"});
    for (const auto policy :
         {SharingPolicy::Priority, SharingPolicy::FcfsSharing,
          SharingPolicy::NonSharing}) {
        ErmsConfig cfg;
        cfg.policy = policy;
        ErmsController ctrl(catalog, cfg);
        const GlobalPlan plan = ctrl.plan(services, itf);
        const char *name = policy == SharingPolicy::Priority
                               ? "Erms (priority)"
                               : policy == SharingPolicy::FcfsSharing
                                     ? "FCFS sharing"
                                     : "non-sharing";
        table.row()
            .cell(name)
            .cell(static_cast<long>(plan.totalContainers))
            .cell(plan.totalResource, 5)
            .cell(plan.feasible ? "yes" : "no");
    }
    printBanner(std::cout, "Plans for the Fig. 5 scenario (SLA 110 ms)");
    table.print(std::cout);

    // 3. Validate the Erms plan in the simulator.
    const GlobalPlan plan = controller.plan(services, itf);
    SimConfig sim_config;
    sim_config.horizonMinutes = 6;
    sim_config.warmupMinutes = 1;
    Simulation sim(catalog, sim_config);
    sim.setBackgroundLoadAll(itf.cpuUtil, itf.memUtil);
    for (const ServiceSpec &svc : services) {
        ServiceWorkload workload;
        workload.id = svc.id;
        workload.graph = svc.graph;
        workload.slaMs = svc.slaMs;
        workload.rate = svc.workload;
        sim.addService(workload);
    }
    sim.applyPlan(plan);
    sim.run();

    printBanner(std::cout, "Simulated validation of the Erms plan");
    TextTable validation({"service", "P95 (ms)", "SLA (ms)", "violation %"});
    for (const ServiceSpec &svc : services) {
        validation.row()
            .cell(svc.name)
            .cell(sim.metrics().p95(svc.id), 2)
            .cell(svc.slaMs, 0)
            .cell(100.0 * sim.metrics().violationRate(svc.id, svc.slaMs), 2);
    }
    validation.print(std::cout);

    std::cout << "\nrequests completed: "
              << sim.metrics().requestsCompleted << "\n";
    return 0;
}
