/**
 * @file
 * Taobao-scale planning (§6.5): generate a synthetic Alibaba-like
 * population (hundreds of services, thousands of microservices, heavy
 * sharing), plan it under the three sharing policies, and report
 * resource usage, priority structure at the hottest shared
 * microservices, and planning overhead.
 *
 * Run: ./taobao_scale_planning [services=300]
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "core/erms.hpp"
#include "workload/synth_trace.hpp"

using namespace erms;

int
main(int argc, char **argv)
{
    const int service_count = argc > 1 ? std::atoi(argv[1]) : 300;

    printBanner(std::cout, "Taobao-scale planning on synthetic traces");

    SynthTraceConfig config;
    config.microserviceCount = 2500;
    config.serviceCount = service_count;
    config.minGraphSize = 20;
    config.maxGraphSize = 80;
    config.popularitySkew = 0.3;
    config.slaRelativeToKnee = true;
    config.seed = 33;
    const SynthTrace trace = makeSynthTrace(config);

    std::vector<ServiceSpec> services;
    for (std::size_t i = 0; i < trace.graphs.size(); ++i) {
        ServiceSpec svc;
        svc.id = trace.graphs[i].service();
        svc.name = "svc" + std::to_string(i);
        svc.graph = &trace.graphs[i];
        svc.slaMs = trace.slaMs[i];
        svc.workload = trace.workloads[i];
        services.push_back(svc);
    }
    std::cout << "population: " << services.size() << " services, "
              << trace.catalog.size() << " microservices, "
              << trace.sharedMicroserviceCount() << " shared\n";

    const Interference itf{0.35, 0.30};
    ErmsController controller(trace.catalog, {});

    printBanner(std::cout, "plans under the three sharing policies");
    TextTable table({"policy", "total containers", "feasible",
                     "planning time (ms)"});
    GlobalPlan priority_plan;
    for (const auto policy :
         {SharingPolicy::Priority, SharingPolicy::FcfsSharing,
          SharingPolicy::NonSharing}) {
        ErmsConfig cfg;
        cfg.policy = policy;
        ErmsController ctrl(trace.catalog, cfg);
        const auto start = std::chrono::steady_clock::now();
        GlobalPlan plan = ctrl.plan(services, itf);
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
        const char *name = policy == SharingPolicy::Priority
                               ? "Erms (priority)"
                               : policy == SharingPolicy::FcfsSharing
                                     ? "FCFS sharing"
                                     : "non-sharing";
        table.row()
            .cell(name)
            .cell(plan.totalContainers)
            .cell(plan.feasible ? "yes" : "partially")
            .cell(static_cast<double>(elapsed) / 1000.0, 1);
        if (policy == SharingPolicy::Priority)
            priority_plan = std::move(plan);
    }
    table.print(std::cout);

    // Show the priority structure at the three most-shared microservices.
    printBanner(std::cout, "priority structure at the hottest shared "
                           "microservices");
    std::vector<std::pair<std::size_t, MicroserviceId>> hottest;
    for (const auto &[ms, order] : priority_plan.priorityOrder)
        hottest.emplace_back(order.size(), ms);
    std::sort(hottest.rbegin(), hottest.rend());

    TextTable hot({"microservice", "sharing services", "containers",
                   "top-priority service"});
    for (std::size_t k = 0; k < std::min<std::size_t>(3, hottest.size());
         ++k) {
        const MicroserviceId ms = hottest[k].second;
        const auto &order = priority_plan.priorityOrder.at(ms);
        hot.row()
            .cell(trace.catalog.name(ms))
            .cell(order.size())
            .cell(priority_plan.containers.at(ms))
            .cell("svc" + std::to_string(order.front()));
    }
    hot.print(std::cout);

    std::cout << "\nthe paper reports ~15 ms average latency-target "
                 "computation per service and\n~300 ms for 1000+ "
                 "microservice graphs; see bench_scalability for the "
                 "measured curve.\n";
    return 0;
}
